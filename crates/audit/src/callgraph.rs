//! Approximate function-level call-graph extraction.
//!
//! Token-level, dependency-free, built on the shared lexer and scope
//! tracker from `cse-source`. One pass per file produces every function
//! definition with its `impl` target type, the calls its body makes, and
//! its panic surface (`unwrap`/`expect`/panic-family macros, plus direct
//! slice indexing inside loops). [`CallGraph::build`] links the
//! per-file scans by name; [`CallGraph::classify`] floods hot-path
//! reachability from the configured serve/exec entry points.
//!
//! ## Resolution model (and its deliberate imprecision)
//!
//! There is no type information, so calls resolve by name:
//!
//! - `Type::name(...)` / `Self::name(...)` resolve to `Type`'s `name`
//!   when such an impl exists, falling back to every function named
//!   `name` (modules qualify paths the same way types do).
//! - `.name(...)` method calls and free `name(...)` calls resolve to
//!   *every* known function named `name`.
//!
//! The fallbacks over-approximate: a method named like an unrelated hot
//! function inherits its hotness. That is the safe direction for a panic
//! audit — a site can be misclassified hot (and need a justification),
//! never silently cold. Functions inside `#[cfg(test)]` / `#[test]`
//! regions are excluded both as resolution targets and as panic-site
//! sources; trait default methods and macro-generated code are scanned
//! as plain tokens.

use cse_source::lexer::{lex, Tok, TokKind};
use cse_source::scope::{BlockKind, ScopeEvent, ScopeTracker};
use std::collections::{HashMap, VecDeque};

/// What kind of panic site a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` — panics with no context.
    Unwrap,
    /// `.expect(..)` — panics with an invariant message (accepted by
    /// policy; still classified hot/cold for the summary).
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro(&'static str),
}

impl PanicKind {
    pub fn label(&self) -> String {
        match self {
            PanicKind::Unwrap => "unwrap()".to_string(),
            PanicKind::Expect => "expect(..)".to_string(),
            PanicKind::Macro(m) => format!("{m}!"),
        }
    }
}

/// One panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub kind: PanicKind,
    pub span: (u32, u32),
}

/// One call made by a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// `Type` in `Type::name(...)`; `None` for free and method calls.
    /// `Self` is resolved to the enclosing impl type at scan time.
    pub qualifier: Option<String>,
    pub name: String,
}

/// One scanned function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Target type of the enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    pub file: String,
    /// Span of the name token in `fn name`.
    pub span: (u32, u32),
    pub in_test: bool,
    pub calls: Vec<Call>,
    pub sites: Vec<PanicSite>,
    /// Direct slice-indexing sites inside loop bodies (`x[i]` in a
    /// `for`/`while`/`loop`), each with its byte span.
    pub index_sites: Vec<(u32, u32)>,
}

impl FnDef {
    /// `Type::name` when the fn is a method, else `name`.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Identifiers that look like calls but are control flow or bindings.
fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "fn"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "mod"
            | "use"
            | "pub"
            | "where"
            | "unsafe"
            | "move"
            | "ref"
            | "mut"
            | "as"
            | "in"
            | "dyn"
            | "const"
            | "static"
            | "type"
            | "crate"
            | "super"
            | "self"
    )
}

/// Scan one file's source into function definitions.
pub fn scan_file(file: &str, src: &str) -> Vec<FnDef> {
    let toks = lex(src);
    let mut tracker = ScopeTracker::new();

    let mut fns: Vec<FnDef> = Vec::new();
    let mut pending_def: Option<FnDef> = None;
    // Stack of indices into `fns` for the currently-open bodies, with the
    // body depth of each (nested fns attribute to the innermost).
    let mut open: Vec<(usize, usize)> = Vec::new();
    // Depths of currently-open loop bodies.
    let mut loop_depths: Vec<usize> = Vec::new();
    let mut pending_loop = false;

    for i in 0..toks.len() {
        let t = &toks[i];
        match tracker.feed(&toks, i) {
            ScopeEvent::FnName => {
                pending_def = Some(FnDef {
                    name: t.ident().unwrap_or("<anon>").to_string(),
                    impl_type: tracker.current_impl().map(|s| s.to_string()),
                    file: file.to_string(),
                    span: (t.start, t.end),
                    in_test: false,
                    calls: Vec::new(),
                    sites: Vec::new(),
                    index_sites: Vec::new(),
                });
            }
            ScopeEvent::Enter(BlockKind::Fn) => {
                if let Some(mut d) = pending_def.take() {
                    // Test regions opened by a `#[test]` attribute start
                    // at the body brace, so sample the flag here, not at
                    // the name.
                    d.in_test = tracker.in_test_region();
                    fns.push(d);
                    open.push((fns.len() - 1, tracker.depth()));
                }
                pending_loop = false;
            }
            ScopeEvent::Enter(BlockKind::Impl) => {
                pending_loop = false;
            }
            ScopeEvent::Enter(BlockKind::Other) => {
                if pending_loop {
                    loop_depths.push(tracker.depth());
                    pending_loop = false;
                }
            }
            ScopeEvent::Exit => {
                let d = tracker.depth();
                while loop_depths.last().is_some_and(|&ld| ld > d) {
                    loop_depths.pop();
                }
                while open.last().is_some_and(|&(_, fd)| fd > d) {
                    open.pop();
                }
            }
            ScopeEvent::Stmt => {
                // `fn f(&self);` trait declarations have no body — but a
                // `;` inside signature parens (`fn g(t: [u8; 4])`) is
                // part of a type, and the pending fn survives it.
                if tracker.paren_depth() == 0 {
                    pending_def = None;
                }
                pending_loop = false;
            }
            ScopeEvent::Other => {
                scan_token(
                    &toks,
                    i,
                    &mut fns,
                    &open,
                    &loop_depths,
                    &mut pending_loop,
                    &tracker,
                );
            }
        }
    }
    fns
}

fn scan_token(
    toks: &[Tok],
    i: usize,
    fns: &mut [FnDef],
    open: &[(usize, usize)],
    loop_depths: &[usize],
    pending_loop: &mut bool,
    tracker: &ScopeTracker,
) {
    let t = &toks[i];
    let cur = open.last().map(|&(idx, _)| idx);
    let prev = |k: usize| i.checked_sub(k).map(|j| &toks[j]);
    let next = |k: usize| toks.get(i + k);

    match &t.kind {
        TokKind::Ident(name) => {
            let name = name.as_str();
            if matches!(name, "for" | "while" | "loop") {
                *pending_loop = true;
                return;
            }
            let Some(cur) = cur else { return };
            let next_is_bang = next(1).is_some_and(|n| n.is_punct(b'!'));
            let next_is_paren = next(1).is_some_and(|n| n.is_punct(b'('));

            if next_is_bang && matches!(name, "panic" | "unreachable" | "todo" | "unimplemented") {
                let kind = PanicKind::Macro(match name {
                    "panic" => "panic",
                    "unreachable" => "unreachable",
                    "todo" => "todo",
                    _ => "unimplemented",
                });
                fns[cur].sites.push(PanicSite {
                    kind,
                    span: (t.start, t.end),
                });
                return;
            }
            if !next_is_paren {
                return;
            }
            let after_dot = prev(1).is_some_and(|p| p.is_punct(b'.'));
            if name == "unwrap" && after_dot && next(2).is_some_and(|n| n.is_punct(b')')) {
                fns[cur].sites.push(PanicSite {
                    kind: PanicKind::Unwrap,
                    span: (t.start, t.end),
                });
                return;
            }
            if name == "expect" && after_dot {
                fns[cur].sites.push(PanicSite {
                    kind: PanicKind::Expect,
                    span: (t.start, t.end),
                });
                return;
            }
            // Call extraction.
            let call = if after_dot {
                Some(Call {
                    qualifier: None,
                    name: name.to_string(),
                })
            } else if prev(1).is_some_and(|p| p.is_punct(b':'))
                && prev(2).is_some_and(|p| p.is_punct(b':'))
            {
                let q = prev(3).and_then(|p| p.ident()).map(|q| {
                    if q == "Self" {
                        fns[cur]
                            .impl_type
                            .clone()
                            .unwrap_or_else(|| "Self".to_string())
                    } else {
                        q.to_string()
                    }
                });
                Some(Call {
                    qualifier: q,
                    name: name.to_string(),
                })
            } else if !is_call_keyword(name) && !name.starts_with(|c: char| c.is_ascii_uppercase())
            {
                // Free call. Uppercase idents before `(` are tuple-struct
                // or enum constructors (`Some`, `CseId`), not functions.
                Some(Call {
                    qualifier: None,
                    name: name.to_string(),
                })
            } else {
                None
            };
            if let Some(c) = call {
                if !fns[cur].calls.contains(&c) {
                    fns[cur].calls.push(c);
                }
            }
        }
        TokKind::Punct(b'[') => {
            let Some(cur) = cur else { return };
            let in_loop = loop_depths.last().is_some_and(|&ld| tracker.depth() >= ld);
            if !in_loop {
                return;
            }
            // Expression-position `[`: indexing after an identifier (not
            // a keyword), a call, or another index. Type positions
            // (`: [u8; 4]`), slices (`&[..]`) and macro brackets
            // (`vec![..]`) have different predecessors.
            let indexable = match prev(1).map(|p| &p.kind) {
                Some(TokKind::Ident(id)) => !is_call_keyword(id),
                Some(TokKind::Punct(b')')) | Some(TokKind::Punct(b']')) => true,
                _ => false,
            };
            if indexable {
                fns[cur].index_sites.push((t.start, t.end));
            }
        }
        _ => {}
    }
}

/// Hot/cold classification of one function.
#[derive(Debug, Clone, Default)]
pub struct HotInfo {
    /// The entry-point pattern whose flood first reached this function.
    pub via: String,
}

/// The linked per-workspace call graph.
pub struct CallGraph {
    pub fns: Vec<FnDef>,
    /// bare name -> non-test fn indices.
    name_map: HashMap<String, Vec<usize>>,
    /// `Type::name` -> non-test fn indices.
    qual_map: HashMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Link scans from every file. `fns` must already be in deterministic
    /// (file, span) order — the classifier's tie-breaks depend on it.
    pub fn build(fns: Vec<FnDef>) -> Self {
        let mut name_map: HashMap<String, Vec<usize>> = HashMap::new();
        let mut qual_map: HashMap<String, Vec<usize>> = HashMap::new();
        for (idx, f) in fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            name_map.entry(f.name.clone()).or_default().push(idx);
            if f.impl_type.is_some() {
                qual_map.entry(f.qualified()).or_default().push(idx);
            }
        }
        CallGraph {
            fns,
            name_map,
            qual_map,
        }
    }

    /// Resolve one call to candidate callee indices.
    fn resolve(&self, call: &Call) -> &[usize] {
        if let Some(q) = &call.qualifier {
            let key = format!("{q}::{}", call.name);
            if let Some(v) = self.qual_map.get(&key) {
                return v;
            }
        }
        self.name_map
            .get(&call.name)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Flood reachability from `roots` (each a `Type::name` or bare-name
    /// pattern). Returns, per function, `Some(HotInfo)` when
    /// hot-reachable, `None` when cold.
    pub fn classify(&self, roots: &[&str]) -> Vec<Option<HotInfo>> {
        let mut hot: Vec<Option<HotInfo>> = vec![None; self.fns.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for root in roots {
            let matches: Vec<usize> = if let Some(v) = self.qual_map.get(*root) {
                v.clone()
            } else {
                self.name_map.get(*root).cloned().unwrap_or_default()
            };
            for idx in matches {
                if hot[idx].is_none() {
                    hot[idx] = Some(HotInfo {
                        via: root.to_string(),
                    });
                    queue.push_back(idx);
                }
            }
        }
        while let Some(idx) = queue.pop_front() {
            let via = hot[idx].as_ref().map(|h| h.via.clone()).unwrap_or_default();
            for call in &self.fns[idx].calls.clone() {
                for &callee in self.resolve(call) {
                    if hot[callee].is_none() && !self.fns[callee].in_test {
                        hot[callee] = Some(HotInfo { via: via.clone() });
                        queue.push_back(callee);
                    }
                }
            }
        }
        hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(scan_file("t.rs", src))
    }

    fn hot_names(g: &CallGraph, roots: &[&str]) -> Vec<String> {
        let hot = g.classify(roots);
        g.fns
            .iter()
            .zip(&hot)
            .filter(|(_, h)| h.is_some())
            .map(|(f, _)| f.qualified())
            .collect()
    }

    #[test]
    fn direct_and_transitive_reachability() {
        let src = r#"
            fn entry() { step_one(); }
            fn step_one() { step_two(); }
            fn step_two() { data.unwrap(); }
            fn unrelated() { other(); }
        "#;
        let g = graph(src);
        let hot = hot_names(&g, &["entry"]);
        assert_eq!(hot, vec!["entry", "step_one", "step_two"]);
        let f = g.fns.iter().find(|f| f.name == "step_two").unwrap();
        assert_eq!(f.sites.len(), 1);
        assert_eq!(f.sites[0].kind, PanicKind::Unwrap);
    }

    #[test]
    fn impl_blocks_qualify_and_self_resolves() {
        let src = r#"
            impl Server {
                fn submit(&self) { self.admit(); Self::validate(x); }
                fn admit(&self) { panic!("full"); }
                fn validate(x: u32) { x.expect("checked"); }
            }
            impl Other {
                fn cold(&self) { todo!() }
            }
        "#;
        let g = graph(src);
        let hot = hot_names(&g, &["Server::submit"]);
        assert_eq!(
            hot,
            vec!["Server::submit", "Server::admit", "Server::validate"]
        );
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let src = r#"
            fn entry(e: &Engine) { e.run(); }
            impl Engine { fn run(&self) { unreachable!() } }
        "#;
        let g = graph(src);
        let hot = hot_names(&g, &["entry"]);
        assert!(hot.contains(&"Engine::run".to_string()), "{hot:?}");
    }

    #[test]
    fn test_regions_neither_emit_sites_nor_attract_hotness() {
        let src = r#"
            fn entry() { helper(); }
            fn live_helper() {}
            #[cfg(test)]
            mod tests {
                fn helper() { x.unwrap(); }
                #[test]
                fn case() { entry(); assert!(true); }
            }
        "#;
        let g = graph(src);
        let hot = hot_names(&g, &["entry"]);
        assert_eq!(hot, vec!["entry"], "test helper must not resolve");
        let test_fn = g.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(test_fn.in_test);
    }

    #[test]
    fn panic_macros_and_contextful_expect_are_distinguished() {
        let src = r#"
            fn f() {
                a.unwrap();
                b.expect("invariant: queue non-empty");
                c.unwrap_or_else(|| panic!("boom"));
                unreachable!("never");
            }
        "#;
        let g = graph(src);
        let kinds: Vec<PanicKind> = g.fns[0].sites.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::Macro("panic"),
                PanicKind::Macro("unreachable"),
            ]
        );
    }

    #[test]
    fn indexing_counts_only_inside_loops() {
        let src = r#"
            fn f(xs: &[u32], ys: &[u32]) -> u32 {
                let a = xs[0];
                let mut s = 0;
                for i in 0..xs.len() {
                    s += xs[i] + ys[i];
                }
                while s > 10 { s -= xs[1]; }
                s
            }
            fn g(t: [u8; 4]) -> u8 { t[0] }
        "#;
        let g = graph(src);
        let f = &g.fns[0];
        assert_eq!(f.index_sites.len(), 3, "two in for, one in while");
        assert!(g.fns[1].index_sites.is_empty(), "no loop in g");
    }

    #[test]
    fn vec_macros_and_types_are_not_index_sites() {
        let src = r#"
            fn f() {
                loop {
                    let v: [u8; 4] = make();
                    let w = vec![1, 2, 3];
                    let s = &xs[..];
                    break;
                }
            }
        "#;
        let g = graph(src);
        // `&xs[..]` is indexing (slicing panics on bad bounds); the type
        // and the macro bracket are not.
        assert_eq!(g.fns[0].index_sites.len(), 1);
    }

    #[test]
    fn constructors_are_not_calls() {
        let src = r#"
            fn f() { let x = Some(CseId(3)); g(); }
            fn g() {}
        "#;
        let g = graph(src);
        let names: Vec<&str> = g.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["g"]);
    }

    #[test]
    fn qualified_resolution_prefers_the_named_impl() {
        let src = r#"
            fn entry() { Alpha::go(); }
            impl Alpha { fn go() { panic!("a"); } }
            impl Beta { fn go() { panic!("b"); } }
        "#;
        let g = graph(src);
        let hot = hot_names(&g, &["entry"]);
        assert!(hot.contains(&"Alpha::go".to_string()));
        assert!(!hot.contains(&"Beta::go".to_string()));
    }
}
