//! # cse-audit — panic-path & contract-drift static analysis
//!
//! `qconc` (in `cse-conc`) checks the *lock discipline* of the serving
//! layer; this crate checks two other things the compiler cannot:
//!
//! 1. **Panic-path audit** ([`callgraph`], [`panic_audit`]) — an
//!    approximate function-level call graph is flooded from the
//!    serve/exec entry points, and every `unwrap`/`expect`/panic-macro
//!    and in-loop indexing site is classified *hot-reachable* (a panic
//!    there unwinds a serving request — the circuit breaker treats it as
//!    `EXEC_FAULT`, see DESIGN.md §13) or *cold* (CLI/bench/test-only).
//!    Hot sites are findings; they either get fixed or get a justified
//!    entry in `qaudit.allow`.
//! 2. **Contract-drift audit** ([`contract`]) — the string vocabularies
//!    shared with clients and docs (reason codes, diagnostic rule ids,
//!    failpoint site names, bench JSON keys) are extracted from source
//!    and cross-checked against `DESIGN.md`/`README.md`, the golden test
//!    corpus, the `sites::ALL` registry, and committed `BENCH_*.json`
//!    artifacts.
//!
//! Both analyses are built on the shared token-level framework in
//! `cse-source` (lexer, brace-scope tracker, allowlist) — the same
//! foundation `cse-conc` uses — so the whole audit stack stays
//! dependency-free and tolerant of mid-edit source.
//!
//! Findings carry stable rule ids (see [`rules`]) and byte spans, and
//! are rendered through `cse-diag` by the `qaudit` binary.

pub mod callgraph;
pub mod contract;

use callgraph::{CallGraph, FnDef, PanicKind};
use cse_diag::Severity;
pub use cse_source::Finding;

/// Stable rule identifiers for audit findings.
pub mod rules {
    /// A `panic!`/`unreachable!`/`todo!`/`unimplemented!` site is
    /// reachable from a serving entry point.
    pub const HOT_PANIC: &str = "audit/hot-panic";
    /// A bare `.unwrap()` (no invariant message) is reachable from a
    /// serving entry point.
    pub const BARE_UNWRAP: &str = "audit/bare-unwrap";
    /// Direct slice indexing inside a loop of a hot-reachable function
    /// in the executor or server crates.
    pub const INDEX_HOT_LOOP: &str = "audit/index-hot-loop";
    /// A declared vocabulary (reason codes, rule ids, failpoint sites,
    /// bench keys) disagrees with docs, goldens, or a registry.
    pub const CONTRACT_DRIFT: &str = "audit/contract-drift";
    /// An allowlist entry no longer matches any finding.
    pub const STALE_ALLOW: &str = "audit/stale-allow";

    pub const ALL: &[&str] = &[
        HOT_PANIC,
        BARE_UNWRAP,
        INDEX_HOT_LOOP,
        CONTRACT_DRIFT,
        STALE_ALLOW,
    ];
}

/// What the panic-path audit treats as hot roots and where the
/// indexing rule applies.
pub struct AuditConfig {
    /// Entry-point patterns (`Type::name` or bare `name`) whose
    /// transitive callees form the hot set.
    pub roots: Vec<&'static str>,
    /// Path fragments scoping `audit/index-hot-loop` (the rule is only
    /// meaningful where a panic aborts a serving request).
    pub index_paths: Vec<&'static str>,
}

impl AuditConfig {
    /// The workspace's serving and execution surface.
    pub fn repo_default() -> Self {
        AuditConfig {
            roots: vec![
                // Serving layer (crates/serve): request intake and the
                // worker/watchdog loops.
                "Server::submit",
                "Server::submit_with_deadline",
                "worker_loop",
                "watchdog_loop",
                // Session/engine execution surface (crates/exec).
                "Engine::execute",
                "Engine::execute_strict",
                "Engine::execute_cancelable",
                "Engine::execute_governed",
                "Engine::execute_reserved",
                "Session::query",
                "lint_batch",
                // Optimizer pipeline (src/pipeline.rs and below).
                "optimize_sql",
                "optimize_plan",
                "optimize_plan_with_facts",
            ],
            index_paths: vec!["crates/exec/", "crates/serve/"],
        }
    }
}

/// Aggregate numbers for the report header.
#[derive(Debug, Default, Clone, Copy)]
pub struct PanicSummary {
    /// Functions scanned (non-test).
    pub functions: usize,
    /// Of those, hot-reachable from a configured root.
    pub hot_functions: usize,
    /// All panic sites in non-test functions (unwrap + expect + macros).
    pub sites: usize,
    /// Panic sites inside hot-reachable functions.
    pub hot_sites: usize,
}

/// Run the panic-path audit over pre-read `(path, text)` sources.
/// Findings come back sorted by `(file, span)`; the summary counts the
/// whole non-test surface, findings only the actionable subset.
pub fn panic_audit(
    sources: &[(String, String)],
    cfg: &AuditConfig,
) -> (Vec<Finding>, PanicSummary) {
    let mut fns: Vec<FnDef> = Vec::new();
    for (path, text) in sources {
        fns.extend(callgraph::scan_file(path, text));
    }
    let graph = CallGraph::build(fns);
    let hot = graph.classify(&cfg.roots);

    let mut out = Vec::new();
    let mut summary = PanicSummary::default();
    for (f, h) in graph.fns.iter().zip(&hot) {
        if f.in_test {
            continue;
        }
        summary.functions += 1;
        summary.sites += f.sites.len();
        let Some(info) = h else { continue };
        summary.hot_functions += 1;
        summary.hot_sites += f.sites.len();
        for site in &f.sites {
            match site.kind {
                PanicKind::Macro(_) => out.push(Finding {
                    rule: rules::HOT_PANIC,
                    file: f.file.clone(),
                    func: f.name.clone(),
                    message: format!(
                        "`{}` in `{}` is hot-reachable (entry `{}`); a panic here unwinds a serving request — prove it impossible or justify it in the allowlist",
                        site.kind.label(),
                        f.qualified(),
                        info.via,
                    ),
                    span: site.span,
                    severity: Severity::Error,
                }),
                PanicKind::Unwrap => out.push(Finding {
                    rule: rules::BARE_UNWRAP,
                    file: f.file.clone(),
                    func: f.name.clone(),
                    message: format!(
                        "bare `unwrap()` in hot-reachable `{}` (entry `{}`); use `expect` with an invariant message or propagate the error",
                        f.qualified(),
                        info.via,
                    ),
                    span: site.span,
                    severity: Severity::Warning,
                }),
                // `expect` with a message is the accepted idiom: it
                // still aborts the request, but names the broken
                // invariant. Counted in the summary, not a finding.
                PanicKind::Expect => {}
            }
        }
        if !f.index_sites.is_empty() && cfg.index_paths.iter().any(|p| f.file.contains(p)) {
            let first = f.index_sites[0];
            out.push(Finding {
                rule: rules::INDEX_HOT_LOOP,
                file: f.file.clone(),
                func: f.name.clone(),
                message: format!(
                    "{} direct indexing site(s) inside loop(s) of hot-reachable `{}`; out-of-bounds indexing panics — prefer iterators/`get` or justify the bound",
                    f.index_sites.len(),
                    f.qualified(),
                ),
                span: first,
                severity: Severity::Warning,
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.span, a.rule).cmp(&(&b.file, b.span, b.rule)));
    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srcs(files: &[(&str, &str)]) -> Vec<(String, String)> {
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    fn cfg(roots: &[&'static str]) -> AuditConfig {
        AuditConfig {
            roots: roots.to_vec(),
            index_paths: vec!["crates/exec/", "crates/serve/"],
        }
    }

    #[test]
    fn hot_macro_is_error_cold_is_silent() {
        let sources = srcs(&[(
            "crates/exec/src/a.rs",
            r#"
            fn entry() { inner(); }
            fn inner() { panic!("bad"); }
            fn cold_path() { unreachable!(); }
            "#,
        )]);
        let (findings, summary) = panic_audit(&sources, &cfg(&["entry"]));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, rules::HOT_PANIC);
        assert_eq!(findings[0].severity, Severity::Error);
        assert!(findings[0].message.contains("entry `entry`"));
        assert_eq!(summary.sites, 2);
        assert_eq!(summary.hot_sites, 1);
        assert_eq!(summary.functions, 3);
        assert_eq!(summary.hot_functions, 2);
    }

    #[test]
    fn bare_unwrap_warns_expect_does_not() {
        let sources = srcs(&[(
            "crates/serve/src/a.rs",
            r#"
            fn entry() {
                x.unwrap();
                y.expect("queue invariant: always non-empty");
            }
            "#,
        )]);
        let (findings, summary) = panic_audit(&sources, &cfg(&["entry"]));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, rules::BARE_UNWRAP);
        assert_eq!(summary.hot_sites, 2, "expect still counted in the surface");
    }

    #[test]
    fn index_rule_scoped_to_hot_crates() {
        let body = r#"
            fn entry(xs: &[u32]) -> u32 {
                let mut s = 0;
                for i in 0..xs.len() { s += xs[i]; }
                s
            }
        "#;
        let hot_crate = srcs(&[("crates/exec/src/a.rs", body)]);
        let (f1, _) = panic_audit(&hot_crate, &cfg(&["entry"]));
        assert_eq!(f1.len(), 1);
        assert_eq!(f1[0].rule, rules::INDEX_HOT_LOOP);
        assert!(f1[0].message.contains("1 direct indexing site(s)"));

        let other_crate = srcs(&[("crates/memo/src/a.rs", body)]);
        let (f2, _) = panic_audit(&other_crate, &cfg(&["entry"]));
        assert!(f2.is_empty(), "rule scoped to exec/serve: {f2:?}");
    }

    #[test]
    fn cross_file_edges_resolve() {
        let sources = srcs(&[
            (
                "crates/serve/src/server.rs",
                r#"impl Server { fn submit(&self) { run_attempt(); } }"#,
            ),
            (
                "crates/serve/src/attempt.rs",
                r#"fn run_attempt() { plan.unwrap(); }"#,
            ),
        ]);
        let (findings, _) = panic_audit(&sources, &cfg(&["Server::submit"]));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "crates/serve/src/attempt.rs");
        assert!(findings[0].message.contains("entry `Server::submit`"));
    }

    #[test]
    fn findings_sorted_and_deterministic() {
        let sources = srcs(&[
            (
                "crates/exec/src/b.rs",
                "fn entry() { b1.unwrap(); panic!(\"x\"); }",
            ),
            (
                "crates/exec/src/a.rs",
                "fn helper() { a1.unwrap(); } fn entry2() { helper(); }",
            ),
        ]);
        let c = cfg(&["entry", "entry2"]);
        let (f1, _) = panic_audit(&sources, &c);
        let (f2, _) = panic_audit(&sources, &c);
        let render = |fs: &[Finding]| {
            fs.iter()
                .map(|f| format!("{}:{:?}:{}", f.path(), f.span, f.rule))
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&f1), render(&f2));
        assert!(f1
            .windows(2)
            .all(|w| (&w[0].file, w[0].span) <= (&w[1].file, w[1].span)));
    }
}
