//! Contract-drift audit: declared vocabularies vs documentation.
//!
//! The workspace exposes several string-keyed contracts that clients and
//! operators depend on: rejection/downgrade **reason codes**
//! (`SHED_QUEUE_FULL`, `OPT_FORCED`, ...), diagnostic **rule ids**
//! (`lint/contradiction`, `conc/guard-across-await`, ...), **failpoint
//! site names** (`spool.materialize`, ...), and the top-level **JSON
//! keys** of the `BENCH_*.json` artifacts. None of these are types — the
//! compiler cannot notice when the docs and the code drift apart.
//!
//! This module extracts each vocabulary from source with the shared
//! lexer (skipping `#[cfg(test)]` regions), then cross-checks:
//!
//! - the generated reference table in `DESIGN.md` (between
//!   `<!-- qaudit:vocab:begin -->` / `<!-- qaudit:vocab:end -->`) must
//!   equal the extracted vocabulary exactly, both directions;
//! - every code/rule-id mentioned in free text (`DESIGN.md`,
//!   `README.md`, outside the table) must still exist in source;
//! - every rule id appearing in a `tests/corpus/*.golden` file must
//!   still have a live declaration;
//! - the failpoint `sites` module's individual consts and its `ALL`
//!   array must reference the same set;
//! - every top-level key in a committed `BENCH_*.json` must be emitted
//!   somewhere by the bench writers.
//!
//! Recognition is whitelist-scoped (code prefixes, rule-id families) so
//! that prose like `TPC-H` or file names like `server.rs` never
//! false-positive.

use crate::rules;
use cse_diag::Severity;
use cse_source::lexer::{lex, TokKind};
use cse_source::scope::ScopeTracker;
use cse_source::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Reason-code prefixes recognized in source and docs. A new code with a
/// new prefix must be added here (that is deliberate: the whitelist is
/// what keeps prose out of the vocabulary).
pub const CODE_PREFIXES: &[&str] = &["SHED_", "REQ_", "EXEC_", "OPT_", "MEM_", "PLAN_", "WAL_"];

/// Diagnostic rule-id families recognized in source and docs.
pub const RULE_FAMILIES: &[&str] = &[
    "provenance",
    "signature",
    "compat",
    "covering",
    "costing",
    "downgrade",
    "lint",
    "conc",
    "audit",
    "catalog",
];

pub const VOCAB_BEGIN: &str = "<!-- qaudit:vocab:begin -->";
pub const VOCAB_END: &str = "<!-- qaudit:vocab:end -->";

/// Everything the source tree declares, each name mapped to the file
/// that first declares it (deterministic: files are fed in sorted order).
#[derive(Debug, Default)]
pub struct Vocabulary {
    pub reason_codes: BTreeMap<String, String>,
    pub rule_ids: BTreeMap<String, String>,
    pub failpoint_sites: BTreeMap<String, String>,
    pub bench_keys: BTreeMap<String, String>,
    /// `(const name, value)` pairs declared inside `mod sites`.
    pub site_consts: Vec<(String, String)>,
    /// Const names referenced by the `ALL` array inside `mod sites`.
    pub site_all_refs: Vec<String>,
}

impl Vocabulary {
    /// Total names across the four public vocabularies.
    pub fn len(&self) -> usize {
        self.reason_codes.len()
            + self.rule_ids.len()
            + self.failpoint_sites.len()
            + self.bench_keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `(kind, name, file)` rows in reference-table order.
    pub fn rows(&self) -> Vec<(&'static str, &str, &str)> {
        let mut out = Vec::new();
        for (n, f) in &self.reason_codes {
            out.push(("reason-code", n.as_str(), f.as_str()));
        }
        for (n, f) in &self.rule_ids {
            out.push(("rule-id", n.as_str(), f.as_str()));
        }
        for (n, f) in &self.failpoint_sites {
            out.push(("failpoint-site", n.as_str(), f.as_str()));
        }
        for (n, f) in &self.bench_keys {
            out.push(("bench-key", n.as_str(), f.as_str()));
        }
        out
    }
}

fn is_reason_code(s: &str) -> bool {
    s.len() >= 4
        && !s.ends_with('_')
        && s.bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
        && s.as_bytes()[0].is_ascii_uppercase()
        && CODE_PREFIXES.iter().any(|p| s.starts_with(p))
}

fn is_rule_id(s: &str) -> bool {
    let Some((family, rest)) = s.split_once('/') else {
        return false;
    };
    RULE_FAMILIES.contains(&family)
        && !rest.is_empty()
        && rest
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'/')
        && !rest.ends_with('-')
        && !rest.ends_with('/')
}

fn is_site_name(s: &str) -> bool {
    s.contains('.')
        && s.as_bytes()[0].is_ascii_lowercase()
        && s.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        })
}

/// Strip the quotes from a string-literal token's text; `None` for
/// non-string literals (chars, byte strings, raw strings kept simple).
fn string_lit(text: &str) -> Option<&str> {
    let t = text.strip_prefix('"')?;
    t.strip_suffix('"')
}

/// Extract vocabulary declarations from one source file into `vocab`.
///
/// Recognized shapes (outside test regions):
///
/// - `"CODE" =>` or `=> "CODE"` match arms whose literal has a known
///   reason-code prefix;
/// - `const NAME: &str = "family/rule"` / `"dotted.site"` declarations;
/// - inside `mod sites`: the individual consts and the `ALL` array;
/// - `\"key\":` fragments inside any string literal (bench JSON writers
///   emit keys with `write!`-style templates).
pub fn extract_source(file: &str, src: &str, vocab: &mut Vocabulary) {
    let toks = lex(src);
    let mut tracker = ScopeTracker::new();
    // Depth of the `mod sites { ... }` body while inside it.
    let mut sites_depth: Option<usize> = None;
    let mut pending_mod_sites = false;

    for i in 0..toks.len() {
        let t = &toks[i];
        tracker.feed(&toks, i);
        if let Some(d) = sites_depth {
            if tracker.depth() < d {
                sites_depth = None;
            }
        }
        if tracker.in_test_region() {
            continue;
        }
        match &t.kind {
            TokKind::Ident(name) if name == "mod" => {
                pending_mod_sites = toks.get(i + 1).is_some_and(|n| n.is_ident("sites"));
            }
            TokKind::Punct(b'{') if pending_mod_sites => {
                sites_depth = Some(tracker.depth());
                pending_mod_sites = false;
            }
            TokKind::Ident(name) if name == "const" => {
                scan_const(file, src, &toks, i, sites_depth.is_some(), vocab);
            }
            TokKind::Literal => {
                let text = &src[t.start as usize..t.end as usize];
                let Some(inner) = string_lit(text) else {
                    continue;
                };
                // Match-arm reason codes: `=> "CODE"` or `"CODE" =>`.
                let after_arrow =
                    i >= 2 && toks[i - 1].is_punct(b'>') && toks[i - 2].is_punct(b'=');
                let before_arrow = toks.get(i + 1).is_some_and(|n| n.is_punct(b'='))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(b'>'));
                if (after_arrow || before_arrow) && is_reason_code(inner) {
                    vocab
                        .reason_codes
                        .entry(inner.to_string())
                        .or_insert_with(|| file.to_string());
                }
                // Embedded JSON keys in writer templates: `\"key\":`.
                let mut rest = inner;
                while let Some(p) = rest.find("\\\"") {
                    rest = &rest[p + 2..];
                    if let Some(q) = rest.find("\\\"") {
                        let key = &rest[..q];
                        let tail = &rest[q + 2..];
                        if tail.starts_with(':')
                            && !key.is_empty()
                            && key.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
                        {
                            vocab
                                .bench_keys
                                .entry(key.to_string())
                                .or_insert_with(|| file.to_string());
                        }
                        rest = tail;
                    } else {
                        break;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Handle a `const` item starting at `toks[i]`.
fn scan_const(
    file: &str,
    src: &str,
    toks: &[cse_source::Tok],
    i: usize,
    in_sites: bool,
    vocab: &mut Vocabulary,
) {
    let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
        return;
    };
    // `const NAME: &str = "value";`
    let is_str_const = toks.get(i + 2).is_some_and(|t| t.is_punct(b':'))
        && toks.get(i + 3).is_some_and(|t| t.is_punct(b'&'))
        && toks.get(i + 4).is_some_and(|t| t.is_ident("str"))
        && toks.get(i + 5).is_some_and(|t| t.is_punct(b'='))
        && toks.get(i + 6).is_some_and(|t| t.kind == TokKind::Literal);
    if is_str_const {
        let lit = &toks[i + 6];
        let text = &src[lit.start as usize..lit.end as usize];
        if let Some(inner) = string_lit(text) {
            if is_rule_id(inner) {
                vocab
                    .rule_ids
                    .entry(inner.to_string())
                    .or_insert_with(|| file.to_string());
            } else if is_site_name(inner) {
                vocab
                    .failpoint_sites
                    .entry(inner.to_string())
                    .or_insert_with(|| file.to_string());
                if in_sites {
                    vocab
                        .site_consts
                        .push((name.to_string(), inner.to_string()));
                }
            }
        }
        return;
    }
    // `pub const ALL: &[&str] = &[A, B, ...];` inside `mod sites`.
    if in_sites && name == "ALL" {
        // Skip the type's `[&str]` bracket: start at `=`.
        let mut j = i + 2;
        while j < toks.len() {
            if toks[j].is_punct(b'=') {
                break;
            }
            j += 1;
        }
        let mut depth = 0usize;
        for t in &toks[j..] {
            match &t.kind {
                TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b']') => {
                    if depth <= 1 {
                        break;
                    }
                    depth -= 1;
                }
                TokKind::Punct(b';') => break,
                TokKind::Ident(id) if depth > 0 => {
                    vocab.site_all_refs.push(id.to_string());
                }
                _ => {}
            }
        }
    }
}

/// Vocabulary-shaped words mentioned in a free-text document.
#[derive(Debug, Default)]
pub struct DocMentions {
    pub reason_codes: BTreeSet<String>,
    pub rule_ids: BTreeSet<String>,
}

/// Scan a markdown/text document for vocabulary mentions. The region
/// between the vocab table markers is excluded (the table is checked
/// separately, with exact set equality).
pub fn scan_doc(text: &str) -> DocMentions {
    let body = match (text.find(VOCAB_BEGIN), text.find(VOCAB_END)) {
        (Some(b), Some(e)) if e > b => format!("{}{}", &text[..b], &text[e + VOCAB_END.len()..]),
        _ => text.to_string(),
    };
    let mut out = DocMentions::default();
    for raw in body.split(|c: char| !(c.is_ascii_alphanumeric() || "_/.-".contains(c))) {
        let w = raw.trim_end_matches(['.', '/', '-']);
        if w.is_empty() {
            continue;
        }
        if is_reason_code(w) {
            out.reason_codes.insert(w.to_string());
        } else if is_rule_id(w) {
            out.rule_ids.insert(w.to_string());
        }
    }
    out
}

/// Parse the reference table between the vocab markers. Returns
/// `None` when the markers are absent, else the set of `(kind, name)`
/// rows.
pub fn parse_vocab_table(text: &str) -> Option<BTreeSet<(String, String)>> {
    let b = text.find(VOCAB_BEGIN)?;
    let e = text.find(VOCAB_END)?;
    if e <= b {
        return None;
    }
    let mut rows = BTreeSet::new();
    for line in text[b..e].lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let kind = cells[0];
        if !matches!(
            kind,
            "reason-code" | "rule-id" | "failpoint-site" | "bench-key"
        ) {
            continue;
        }
        let name = cells[1].trim_matches('`');
        rows.insert((kind.to_string(), name.to_string()));
    }
    Some(rows)
}

/// Render the reference table body (markers included) for `DESIGN.md`
/// and `--print-vocab`.
pub fn render_vocab_table(vocab: &Vocabulary) -> String {
    let mut out = String::new();
    out.push_str(VOCAB_BEGIN);
    out.push('\n');
    out.push_str("| kind | name | declared in |\n");
    out.push_str("|---|---|---|\n");
    for (kind, name, file) in vocab.rows() {
        out.push_str(&format!("| {kind} | `{name}` | `{file}` |\n"));
    }
    out.push_str(VOCAB_END);
    out.push('\n');
    out
}

fn drift(kind: &str, file: &str, msg: String) -> Finding {
    Finding {
        rule: rules::CONTRACT_DRIFT,
        file: file.to_string(),
        func: kind.to_string(),
        message: msg,
        span: (0, 0),
        severity: Severity::Error,
    }
}

/// Top-level keys of a JSON object file, parsed with a minimal scanner
/// (no serde in the workspace). Returns an empty set for non-object or
/// malformed input.
pub fn json_top_level_keys(text: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth -= 1;
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                let end = j.min(bytes.len());
                let mut k = end + 1;
                while k < bytes.len() && (bytes[k] as char).is_ascii_whitespace() {
                    k += 1;
                }
                if depth == 1 && k < bytes.len() && bytes[k] == b':' {
                    keys.insert(text[start..end].to_string());
                }
                i = end + 1;
            }
            _ => i += 1,
        }
    }
    keys
}

/// Inputs for the cross-checks that are not `.rs` sources.
pub struct ContractInputs {
    /// `(path, text)` of the documentation files (DESIGN.md, README.md).
    /// The first entry is the canonical one holding the vocab table.
    pub docs: Vec<(String, String)>,
    /// `(path, text)` of `tests/corpus/*.golden` files.
    pub goldens: Vec<(String, String)>,
    /// `(path, text)` of committed `BENCH_*.json` artifacts.
    pub bench_json: Vec<(String, String)>,
}

/// Run every contract cross-check. Findings are returned in a
/// deterministic order (kind, then name).
pub fn check(vocab: &Vocabulary, inputs: &ContractInputs) -> Vec<Finding> {
    let mut out = Vec::new();

    // 1. Reference table: exact two-way equality in the canonical doc.
    if let Some((doc_path, doc_text)) = inputs.docs.first() {
        match parse_vocab_table(doc_text) {
            None => out.push(drift(
                "vocab-table",
                doc_path,
                format!(
                    "no vocabulary reference table found (expected one between `{VOCAB_BEGIN}` and `{VOCAB_END}`)"
                ),
            )),
            Some(rows) => {
                let want: BTreeSet<(String, String)> = vocab
                    .rows()
                    .iter()
                    .map(|(k, n, _)| (k.to_string(), n.to_string()))
                    .collect();
                for (kind, name, file) in vocab.rows() {
                    if !rows.contains(&(kind.to_string(), name.to_string())) {
                        out.push(drift(
                            kind,
                            doc_path,
                            format!(
                                "{kind} `{name}` (declared in {file}) is missing from the vocabulary reference table"
                            ),
                        ));
                    }
                }
                for (kind, name) in &rows {
                    if !want.contains(&(kind.clone(), name.clone())) {
                        out.push(drift(
                            kind,
                            doc_path,
                            format!(
                                "{kind} `{name}` is listed in the vocabulary reference table but no longer declared in source"
                            ),
                        ));
                    }
                }
            }
        }
    }

    // 2. Free-text mentions must refer to live names.
    for (path, text) in &inputs.docs {
        let mentions = scan_doc(text);
        for code in &mentions.reason_codes {
            if !vocab.reason_codes.contains_key(code) {
                out.push(drift(
                    "reason-code",
                    path,
                    format!(
                        "reason code `{code}` is mentioned here but has no live emitter in source"
                    ),
                ));
            }
        }
        for id in &mentions.rule_ids {
            if !vocab.rule_ids.contains_key(id) {
                out.push(drift(
                    "rule-id",
                    path,
                    format!("rule id `{id}` is mentioned here but no longer declared in source"),
                ));
            }
        }
    }

    // 3. Golden corpus files must not pin dead rule ids.
    for (path, text) in &inputs.goldens {
        let mentions = scan_doc(text);
        for id in &mentions.rule_ids {
            if !vocab.rule_ids.contains_key(id) {
                out.push(drift(
                    "rule-id",
                    path,
                    format!(
                        "golden file pins rule id `{id}` which is no longer declared in source"
                    ),
                ));
            }
        }
    }

    // 4. Failpoint sites: every const must be in ALL and vice versa.
    let const_names: BTreeSet<&str> = vocab.site_consts.iter().map(|(n, _)| n.as_str()).collect();
    let all_refs: BTreeSet<&str> = vocab.site_all_refs.iter().map(|s| s.as_str()).collect();
    if !const_names.is_empty() || !all_refs.is_empty() {
        for n in const_names.difference(&all_refs) {
            out.push(drift(
                "failpoint-site",
                "crates/govern/src/lib.rs",
                format!("failpoint site const `{n}` is declared but missing from `sites::ALL`"),
            ));
        }
        for n in all_refs.difference(&const_names) {
            out.push(drift(
                "failpoint-site",
                "crates/govern/src/lib.rs",
                format!("`sites::ALL` references `{n}` which has no site const declaration"),
            ));
        }
    }

    // 5. Committed bench artifacts: top-level keys must be emitted keys.
    for (path, text) in &inputs.bench_json {
        for key in json_top_level_keys(text) {
            if !vocab.bench_keys.contains_key(&key) {
                out.push(drift(
                    "bench-key",
                    path,
                    format!(
                        "committed artifact has top-level key `{key}` that no bench writer emits"
                    ),
                ));
            }
        }
    }

    out.sort_by(|a, b| (&a.file, &a.func, &a.message).cmp(&(&b.file, &b.func, &b.message)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab_of(src: &str) -> Vocabulary {
        let mut v = Vocabulary::default();
        extract_source("f.rs", src, &mut v);
        v
    }

    #[test]
    fn match_arm_codes_both_directions() {
        let v = vocab_of(
            r#"
            fn as_str(r: R) -> &'static str {
                match r {
                    R::QueueFull => "SHED_QUEUE_FULL",
                    R::Forced => "OPT_FORCED",
                }
            }
            fn parse(s: &str) -> R {
                match s { "MEM_PRESSURE" => R::Mem, _ => R::Other }
            }
            "#,
        );
        let codes: Vec<&str> = v.reason_codes.keys().map(|s| s.as_str()).collect();
        assert_eq!(codes, vec!["MEM_PRESSURE", "OPT_FORCED", "SHED_QUEUE_FULL"]);
    }

    #[test]
    fn non_whitelisted_caps_are_ignored() {
        let v = vocab_of(r#"fn f() { match x { T::A => "SOME_OTHER_THING", T::B => "INT" } }"#);
        assert!(v.reason_codes.is_empty());
    }

    #[test]
    fn rule_id_and_site_consts() {
        let v = vocab_of(
            r#"
            pub const GUARD: &str = "conc/guard-across-await";
            pub mod sites {
                pub const SPOOL: &str = "spool.materialize";
                pub const SCAN: &str = "scan.table";
                pub const ALL: &[&str] = &[SPOOL, SCAN];
            }
            const NOT_A_RULE: &str = "just text";
            "#,
        );
        assert!(v.rule_ids.contains_key("conc/guard-across-await"));
        assert!(v.failpoint_sites.contains_key("spool.materialize"));
        assert_eq!(v.site_consts.len(), 2);
        assert_eq!(v.site_all_refs, vec!["SPOOL", "SCAN"]);
    }

    #[test]
    fn test_regions_do_not_declare() {
        let v = vocab_of(
            r#"
            #[cfg(test)]
            mod tests {
                pub const FAKE: &str = "lint/not-real";
                fn f() { match x { _ => "SHED_FAKE_CODE" } }
            }
            "#,
        );
        assert!(v.rule_ids.is_empty());
        assert!(v.reason_codes.is_empty());
    }

    #[test]
    fn bench_keys_from_writer_templates() {
        let v = vocab_of(r#"fn w() { out.push_str("{\"schema\": 1, \"p50_ms\": 2}"); }"#);
        assert!(v.bench_keys.contains_key("schema"));
        assert!(v.bench_keys.contains_key("p50_ms"));
    }

    #[test]
    fn doc_scan_whitelists_and_strips_punctuation() {
        let m = scan_doc(
            "Codes SHED_QUEUE_FULL and OPT_FORCED, rule conc/stale-allow. Globs like \
             SHED_* and downgrade/* are not names; neither are TPC-H or server.rs.",
        );
        assert_eq!(
            m.reason_codes.iter().cloned().collect::<Vec<_>>(),
            vec!["OPT_FORCED", "SHED_QUEUE_FULL"]
        );
        assert_eq!(
            m.rule_ids.iter().cloned().collect::<Vec<_>>(),
            vec!["conc/stale-allow"]
        );
    }

    #[test]
    fn table_roundtrip_and_equality_check() {
        let mut v = Vocabulary::default();
        v.reason_codes.insert("OPT_FORCED".into(), "a.rs".into());
        v.rule_ids
            .insert("lint/contradiction".into(), "b.rs".into());
        let doc = format!("# Doc\n\n{}\nrest", render_vocab_table(&v));
        let inputs = ContractInputs {
            docs: vec![("DESIGN.md".into(), doc)],
            goldens: vec![],
            bench_json: vec![],
        };
        assert!(check(&v, &inputs).is_empty());

        // Drop a row -> missing-from-table finding.
        v.reason_codes.insert("SHED_MEMORY".into(), "a.rs".into());
        let f = check(&v, &inputs);
        assert_eq!(f.len(), 1);
        assert!(f[0]
            .message
            .contains("missing from the vocabulary reference table"));
    }

    #[test]
    fn dead_doc_mention_is_drift() {
        // The first doc is the canonical table holder, so give it an
        // (empty, matching) table; the dead mention in the second doc is
        // then the only finding.
        let v = Vocabulary::default();
        let inputs = ContractInputs {
            docs: vec![
                ("DESIGN.md".into(), render_vocab_table(&v)),
                ("README.md".into(), "emits SHED_OLD_CODE on overload".into()),
            ],
            goldens: vec![],
            bench_json: vec![],
        };
        let f = check(&v, &inputs);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("SHED_OLD_CODE"));
        assert_eq!(f[0].file, "README.md");
    }

    #[test]
    fn all_array_cross_check() {
        let mut v = vocab_of(
            r#"
            pub mod sites {
                pub const A: &str = "a.one";
                pub const B: &str = "b.two";
                pub const ALL: &[&str] = &[A];
            }
            "#,
        );
        v.rule_ids.clear();
        let inputs = ContractInputs {
            docs: vec![],
            goldens: vec![],
            bench_json: vec![],
        };
        let f = check(&v, &inputs);
        assert_eq!(f.len(), 1);
        assert!(f[0]
            .message
            .contains("`B` is declared but missing from `sites::ALL`"));
    }

    #[test]
    fn json_top_level_keys_ignore_nested() {
        let keys = json_top_level_keys(
            r#"{ "schema": 1, "rows": [{"inner": 2}], "stats": {"deep": 3}, "p50_ms": 4.5 }"#,
        );
        let got: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
        assert_eq!(got, vec!["p50_ms", "rows", "schema", "stats"]);
    }

    #[test]
    fn golden_rule_id_drift() {
        let mut v = Vocabulary::default();
        v.rule_ids
            .insert("lint/contradiction".into(), "b.rs".into());
        let inputs = ContractInputs {
            docs: vec![],
            goldens: vec![(
                "tests/corpus/x.golden".into(),
                "error[lint/contradiction] ...\nwarn[lint/removed-rule] ...".into(),
            )],
            bench_json: vec![],
        };
        let f = check(&v, &inputs);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("lint/removed-rule"));
    }
}
