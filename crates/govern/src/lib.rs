//! # cse-govern
//!
//! Resource governance and fault tolerance primitives shared by the
//! optimizer pipeline (`cse-core`) and the execution engine (`cse-exec`):
//!
//! - [`Budget`] / [`BudgetClock`]: a wall-clock deadline plus memo-size and
//!   candidate-count caps threaded through the CSE optimization phase.
//!   Tripping a budget never fails a query — it walks the **degradation
//!   ladder** (full CSE → heuristics-capped CSE → baseline no-CSE plan).
//! - [`DegradationEvent`] / [`Reason`] / [`Rung`]: every downgrade, retry
//!   or recovery is reported as a structured event with a stable reason
//!   code, so operators can alert on fallback rates instead of parsing
//!   log strings.
//! - [`FailpointRegistry`]: a deterministic fault-injection registry seeded
//!   by the repo's xorshift testkit PRNG. Failpoints are armed only via
//!   explicit configuration (or the `CSE_FAIL` environment variable); a
//!   disabled registry is a single `Option` check, so release hot paths
//!   stay branch-cheap.
//! - [`ExecLimits`]: per-statement row/byte materialization budgets the
//!   interpreter enforces, degrading to the retained baseline plan on
//!   breach.

#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use cse_storage::testkit::TestRng;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub mod memory;
pub use memory::{MemReservation, MemScope, MemoryGovernor, Pressure, ReserveError};

/// Canonical failpoint site names. Sites are dynamic strings in the
/// registry (the `CSE_FAIL` grammar allows anything), but injection code
/// should reference these constants.
pub mod sites {
    /// First materialization of a CSE spool work table.
    pub const SPOOL_MATERIALIZE: &str = "spool.materialize";
    /// Full table scan of a base table.
    pub const SCAN_TABLE: &str = "scan.table";
    /// B-tree index range scan.
    pub const SCAN_INDEX: &str = "scan.index";
    /// Entry of the optimizer's CSE phase; a trip here *panics* on
    /// purpose, exercising the `catch_unwind` isolation of the ladder.
    pub const OPT_CSE_PHASE: &str = "opt.cse-phase";
    /// A serving worker picking up a request (`cse-serve`); a trip here is
    /// a transient worker fault the server retries with backoff.
    pub const SERVE_WORKER: &str = "serve.worker";
    /// A memory-governor reservation or grant growth
    /// ([`crate::memory::MemoryGovernor`]); a trip here makes the grant
    /// appear exhausted, exercising the reservation-fault recovery path
    /// without needing a real budget squeeze.
    pub const MEM_RESERVE: &str = "mem.reserve";
    /// Appending a record to the durability write-ahead log
    /// (`cse-durable`); a trip crashes the simulated device before the
    /// frame is staged, possibly leaving a torn tail.
    pub const WAL_APPEND: &str = "wal.append";
    /// The fsync that makes staged WAL frames durable; a trip loses the
    /// unsynced suffix (fsync-loss fault).
    pub const WAL_FSYNC: &str = "wal.fsync";
    /// Writing a catalog snapshot; a trip crashes mid-snapshot, which must
    /// leave the previous snapshot + log intact (write-ahead invariant).
    pub const SNAPSHOT_WRITE: &str = "snapshot.write";
    /// Replaying one WAL record during recovery; a trip simulates a crash
    /// *during* recovery, which must itself be recoverable.
    pub const RECOVER_REPLAY: &str = "recover.replay";

    /// Every site with an injection hook in the codebase. The drift test in
    /// `tests/failpoint_drift.rs` arms each one and asserts it actually
    /// trips, so a site listed here without a live hook fails CI.
    pub const ALL: &[&str] = &[
        SPOOL_MATERIALIZE,
        SCAN_TABLE,
        SCAN_INDEX,
        OPT_CSE_PHASE,
        SERVE_WORKER,
        MEM_RESERVE,
        WAL_APPEND,
        WAL_FSYNC,
        SNAPSHOT_WRITE,
        RECOVER_REPLAY,
    ];

    /// Is `name` a known site?
    pub fn is_known(name: &str) -> bool {
        ALL.contains(&name)
    }
}

/// A rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Rung {
    /// Full CSE optimization: detection, Algorithm 1 with the configured
    /// heuristics, stacked candidates, full enumeration.
    #[default]
    FullCse,
    /// Heuristics-capped CSE: tightened cost bounds (doubled α, halved β),
    /// no stacked round, a hard candidate cap and a short enumeration.
    CappedCse,
    /// The baseline per-query plan with no covering subexpressions.
    Baseline,
}

impl Rung {
    /// Stable textual form (used in reports and JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            Rung::FullCse => "full-cse",
            Rung::CappedCse => "capped-cse",
            Rung::Baseline => "baseline",
        }
    }

    /// The next rung down, if any.
    pub fn next_down(&self) -> Option<Rung> {
        match self {
            Rung::FullCse => Some(Rung::CappedCse),
            Rung::CappedCse => Some(Rung::Baseline),
            Rung::Baseline => None,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a downgrade / recovery happened. Every variant maps to a stable
/// reason code via [`Reason::code`]; codes are part of the public contract
/// (tests, dashboards and the bench robustness report key on them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Reason {
    /// The optimization wall-clock deadline expired.
    OptDeadline,
    /// The memo grew past the budgeted expression cap.
    OptMemoCap,
    /// Candidate generation produced more candidates than budgeted.
    OptCandidateCap,
    /// The CSE phase panicked; `catch_unwind` isolated it.
    OptPanic,
    /// The operator forced the baseline rung (`--no-cse-fallback-only`).
    OptForced,
    /// A failpoint injected a fault during execution.
    ExecFaultInjected,
    /// The per-statement row materialization budget was breached.
    ExecRowBudget,
    /// The per-statement byte materialization budget was breached.
    ExecMemBudget,
    /// The request's memory reservation grant could not be extended
    /// (global budget exhausted or the `mem.reserve` failpoint tripped).
    MemReservation,
    /// Global memory pressure capped or forced down the starting rung.
    MemPressure,
    /// The request was canceled explicitly (watchdog or client).
    ReqCanceled,
    /// The request's end-to-end deadline expired.
    ReqDeadline,
}

impl Reason {
    /// Stable reason code.
    pub fn code(&self) -> &'static str {
        match self {
            Reason::OptDeadline => "OPT_DEADLINE",
            Reason::OptMemoCap => "OPT_MEMO_CAP",
            Reason::OptCandidateCap => "OPT_CAND_CAP",
            Reason::OptPanic => "OPT_PANIC",
            Reason::OptForced => "OPT_FORCED",
            Reason::ExecFaultInjected => "EXEC_FAULT_INJECTED",
            Reason::ExecRowBudget => "EXEC_ROW_BUDGET",
            Reason::ExecMemBudget => "EXEC_MEM_BUDGET",
            Reason::MemReservation => "EXEC_MEM_RESERVATION",
            Reason::MemPressure => "MEM_PRESSURE",
            Reason::ReqCanceled => "REQ_CANCELED",
            Reason::ReqDeadline => "REQ_DEADLINE",
        }
    }

    /// Cancellation reasons abort the whole request rather than walking the
    /// degradation ladder: a canceled optimization must stop, not retry on
    /// a cheaper rung.
    pub fn is_cancellation(&self) -> bool {
        matches!(self, Reason::ReqCanceled | Reason::ReqDeadline)
    }
}

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One structured downgrade / recovery record.
#[derive(Debug, Clone)]
pub struct DegradationEvent {
    pub reason: Reason,
    /// Pipeline stage or execution site ("generation", "enumerate",
    /// "statement 2", "spool E0", ...).
    pub stage: String,
    /// Ladder rung the work was attempted on.
    pub from: Rung,
    /// Ladder rung the work degraded to (equal to `from` for soft
    /// degradations such as a truncated enumeration).
    pub to: Rung,
    pub detail: String,
}

impl DegradationEvent {
    /// An optimizer-side ladder event.
    pub fn opt(
        reason: Reason,
        stage: impl Into<String>,
        from: Rung,
        to: Rung,
        detail: impl Into<String>,
    ) -> Self {
        DegradationEvent {
            reason,
            stage: stage.into(),
            from,
            to,
            detail: detail.into(),
        }
    }

    /// An execution-side recovery event (the runtime ladder has exactly
    /// two rungs: the planned shared plan and the retained baseline).
    pub fn exec(reason: Reason, stage: impl Into<String>, detail: impl Into<String>) -> Self {
        DegradationEvent {
            reason,
            stage: stage.into(),
            from: Rung::FullCse,
            to: Rung::Baseline,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {} -> {}: {}",
            self.reason.code(),
            self.stage,
            self.from,
            self.to,
            self.detail
        )
    }
}

/// A tripped budget: which limit, at which stage. Converted into a
/// [`DegradationEvent`] by the ladder.
#[derive(Debug, Clone)]
pub struct BudgetTrip {
    pub reason: Reason,
    pub stage: &'static str,
    pub detail: String,
}

impl BudgetTrip {
    pub fn event(&self, from: Rung, to: Rung) -> DegradationEvent {
        DegradationEvent::opt(self.reason, self.stage, from, to, self.detail.clone())
    }
}

/// Cooperative cancellation: an explicit cancel flag (shared across clones)
/// plus an optional hard deadline, checked at the optimizer's and the
/// interpreter's loop boundaries.
///
/// Cloning shares the *flag* — a watchdog holding one clone can cancel the
/// worker holding another — while [`CancelToken::with_new_deadline`] derives
/// a retry-attempt token that keeps the shared flag but restarts the clock.
/// The token is plain data (`Arc<AtomicBool>` + `Option<Instant>`), so it is
/// `Send + Sync`, unwind-safe, and free when never canceled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never cancels (the default for unmanaged callers).
    pub fn never() -> Self {
        CancelToken::default()
    }

    /// A token with a deadline `d` from now (plus the shared cancel flag).
    pub fn with_deadline(d: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + d),
        }
    }

    /// Derive a token sharing this token's cancel flag but with a fresh
    /// deadline `d` from now (used per retry attempt).
    pub fn with_new_deadline(&self, d: Duration) -> Self {
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: Some(Instant::now() + d),
        }
    }

    /// Request cancellation. Idempotent; observed by every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Was [`CancelToken::cancel`] called (on any clone)?
    pub fn is_explicitly_canceled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Has the deadline passed?
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Should the bearer stop? (explicit cancel or expired deadline)
    pub fn is_canceled(&self) -> bool {
        self.is_explicitly_canceled() || self.deadline_expired()
    }

    /// Time left until the deadline (`None` = no deadline).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Trip if canceled. The explicit flag wins over the deadline so a
    /// watchdog cancel is reported as `REQ_CANCELED` even when the deadline
    /// has also passed by the time the loop checks.
    pub fn check(&self, stage: &'static str) -> Result<(), BudgetTrip> {
        if self.is_explicitly_canceled() {
            return Err(BudgetTrip {
                reason: Reason::ReqCanceled,
                stage,
                detail: "request canceled".to_string(),
            });
        }
        if self.deadline_expired() {
            return Err(BudgetTrip {
                reason: Reason::ReqDeadline,
                stage,
                detail: "request deadline expired".to_string(),
            });
        }
        Ok(())
    }
}

/// Optimization budget: every limit is optional; the default is unlimited
/// (the paper's configuration).
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock limit for the *CSE phase* (the baseline plan is always
    /// computed — it is the ladder's floor).
    pub time_limit: Option<Duration>,
    /// Cap on memo group expressions during the CSE phase.
    pub max_memo_gexprs: Option<usize>,
    /// Cap on generated candidates. On the full rung exceeding it trips to
    /// the capped rung; the capped rung truncates instead.
    pub max_candidates: Option<usize>,
}

impl Budget {
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Budget with only a wall-clock deadline.
    pub fn with_time_ms(ms: u64) -> Self {
        Budget {
            time_limit: Some(Duration::from_millis(ms)),
            ..Budget::default()
        }
    }

    /// Start the clock: deadlines are measured from this call.
    pub fn start(&self) -> BudgetClock {
        self.start_with(&CancelToken::never())
    }

    /// Start the clock with a cancellation token: every `check_time` call
    /// in the optimizer hot loops then doubles as a cancellation point.
    pub fn start_with(&self, cancel: &CancelToken) -> BudgetClock {
        BudgetClock {
            deadline: self.time_limit.map(|d| Instant::now() + d),
            max_memo_gexprs: self.max_memo_gexprs,
            max_candidates: self.max_candidates,
            cancel: cancel.clone(),
        }
    }
}

/// A started budget: deadline instant plus the structural caps and the
/// request's cancellation token.
#[derive(Debug, Clone)]
pub struct BudgetClock {
    deadline: Option<Instant>,
    pub max_memo_gexprs: Option<usize>,
    pub max_candidates: Option<usize>,
    cancel: CancelToken,
}

impl BudgetClock {
    /// A clock that never trips (used by callers without a budget).
    pub fn unlimited() -> Self {
        BudgetClock {
            deadline: None,
            max_memo_gexprs: None,
            max_candidates: None,
            cancel: CancelToken::never(),
        }
    }

    /// Has the wall-clock deadline passed?
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Trip if the request was canceled or the budget deadline passed.
    /// Cancellation is checked first — it aborts the request outright
    /// (see [`Reason::is_cancellation`]) while a budget trip merely walks
    /// the degradation ladder.
    pub fn check_time(&self, stage: &'static str) -> Result<(), BudgetTrip> {
        self.cancel.check(stage)?;
        if self.expired() {
            return Err(BudgetTrip {
                reason: Reason::OptDeadline,
                stage,
                detail: "optimization deadline expired".to_string(),
            });
        }
        Ok(())
    }

    /// Trip if the memo has outgrown the budgeted expression cap.
    pub fn check_memo(&self, gexprs: usize, stage: &'static str) -> Result<(), BudgetTrip> {
        match self.max_memo_gexprs {
            Some(cap) if gexprs > cap => Err(BudgetTrip {
                reason: Reason::OptMemoCap,
                stage,
                detail: format!("memo holds {gexprs} expressions, budget caps at {cap}"),
            }),
            _ => Ok(()),
        }
    }

    /// Trip if more candidates were generated than budgeted.
    pub fn check_candidates(&self, n: usize, stage: &'static str) -> Result<(), BudgetTrip> {
        match self.max_candidates {
            Some(cap) if n > cap => Err(BudgetTrip {
                reason: Reason::OptCandidateCap,
                stage,
                detail: format!("{n} candidates generated, budget caps at {cap}"),
            }),
            _ => Ok(()),
        }
    }
}

/// Per-statement execution limits (rows / approximate bytes materialized by
/// scans, joins, aggregations and spools). Breaching a limit degrades the
/// statement to the retained baseline plan; it does not fail the batch.
#[derive(Debug, Clone, Default)]
pub struct ExecLimits {
    pub max_rows: Option<usize>,
    pub max_bytes: Option<usize>,
}

impl ExecLimits {
    pub fn none() -> Self {
        ExecLimits::default()
    }

    pub fn is_unlimited(&self) -> bool {
        self.max_rows.is_none() && self.max_bytes.is_none()
    }
}

/// One armed failpoint: `site:probability[:seed]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FailSpec {
    pub site: String,
    pub probability: f64,
    pub seed: u64,
}

impl FailSpec {
    /// Parse `site:prob[:seed]` (e.g. `spool.materialize:1.0:42`).
    pub fn parse(s: &str) -> Result<FailSpec, String> {
        let mut parts = s.split(':');
        let site = parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| format!("failpoint spec '{s}': missing site"))?;
        let prob: f64 = parts
            .next()
            .ok_or_else(|| format!("failpoint spec '{s}': missing probability"))?
            .parse()
            .map_err(|_| format!("failpoint spec '{s}': probability is not a number"))?;
        if !(0.0..=1.0).contains(&prob) {
            return Err(format!("failpoint spec '{s}': probability not in [0, 1]"));
        }
        let seed: u64 = match parts.next() {
            Some(v) => v
                .parse()
                .map_err(|_| format!("failpoint spec '{s}': seed is not an integer"))?,
            None => 0x5EED,
        };
        if parts.next().is_some() {
            return Err(format!("failpoint spec '{s}': too many fields"));
        }
        Ok(FailSpec {
            site: site.to_string(),
            probability: prob,
            seed,
        })
    }
}

/// Parse the full `CSE_FAIL` grammar: comma-separated `site:prob[:seed]`
/// specs, optionally with the literal token `allow-unknown` anywhere in the
/// list. Unknown site names are rejected with an error listing
/// [`sites::ALL`] — a typo'd site used to arm nothing and silently pass —
/// unless `allow-unknown` is present (the escape hatch tests use to inject
/// at sites that only exist in a branch under development).
pub fn parse_fail_specs(raw: &str) -> Result<Vec<FailSpec>, String> {
    let parts: Vec<&str> = raw
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect();
    let allow_unknown = parts.contains(&"allow-unknown");
    let mut specs = Vec::new();
    for part in parts {
        if part == "allow-unknown" {
            continue;
        }
        let spec = FailSpec::parse(part)?;
        if !allow_unknown && !sites::is_known(&spec.site) {
            return Err(format!(
                "unknown failpoint site '{}'; known sites: {} \
                 (add 'allow-unknown' to the spec list to bypass)",
                spec.site,
                sites::ALL.join(", ")
            ));
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// Mutable state of one armed site.
#[derive(Debug)]
struct ArmedSite {
    probability: f64,
    rng: TestRng,
    evaluations: u64,
    trips: u64,
}

/// Deterministic fault-injection registry.
///
/// Disabled by default: `should_fail` on a disabled registry is a single
/// `Option::is_none` check, so production hot paths pay (almost) nothing.
/// Armed sites draw from a per-site xorshift64* PRNG ([`TestRng`]) with an
/// explicit seed, so a fixed seed matrix reproduces the exact same fault
/// schedule on every machine.
///
/// `Clone` *shares* the armed state (the map lives behind an `Arc`): every
/// configuration clone — per-rung ladder attempts, per-worker configs in a
/// server — draws from one process-wide fault schedule instead of each
/// replaying the schedule from its seed. A deep per-site copy is available
/// via [`FailpointRegistry::fork`] for callers that want replay semantics.
#[derive(Debug, Default, Clone)]
pub struct FailpointRegistry {
    inner: Option<Arc<Mutex<BTreeMap<String, ArmedSite>>>>,
}

impl FailpointRegistry {
    /// The branch-cheap default: nothing armed.
    pub fn disabled() -> Self {
        FailpointRegistry::default()
    }

    /// Registry with the given failpoints armed.
    pub fn from_specs(specs: &[FailSpec]) -> Self {
        let mut reg = FailpointRegistry::disabled();
        for s in specs {
            reg.arm(s.clone());
        }
        reg
    }

    /// Registry from the `CSE_FAIL` environment variable (validated
    /// grammar, see [`parse_fail_specs`]). Unset or empty ⇒ disabled.
    /// A malformed value is reported on stderr and ignored as a whole —
    /// fault injection must never turn into a crash vector itself — but
    /// binaries that want a hard failure should use
    /// [`FailpointRegistry::from_env_checked`] and exit on the error.
    pub fn from_env() -> Self {
        match FailpointRegistry::from_env_checked() {
            Ok(reg) => reg,
            Err(e) => {
                eprintln!("CSE_FAIL: {e} (ignored; nothing armed)");
                FailpointRegistry::disabled()
            }
        }
    }

    /// Registry from the `CSE_FAIL` environment variable, rejecting unknown
    /// site names and malformed probabilities with a descriptive error.
    pub fn from_env_checked() -> Result<Self, String> {
        let raw = match std::env::var("CSE_FAIL") {
            Ok(v) if !v.trim().is_empty() => v,
            _ => return Ok(FailpointRegistry::disabled()),
        };
        Ok(FailpointRegistry::from_specs(&parse_fail_specs(&raw)?))
    }

    /// A deep copy with private per-site PRNG state (replay semantics, the
    /// pre-sharing behaviour of `Clone`).
    pub fn fork(&self) -> Self {
        match &self.inner {
            None => FailpointRegistry { inner: None },
            Some(m) => {
                let guard = m.lock().unwrap_or_else(|p| p.into_inner());
                let copied: BTreeMap<String, ArmedSite> = guard
                    .iter()
                    .map(|(k, v)| {
                        (
                            k.clone(),
                            ArmedSite {
                                probability: v.probability,
                                rng: v.rng.clone(),
                                evaluations: v.evaluations,
                                trips: v.trips,
                            },
                        )
                    })
                    .collect();
                FailpointRegistry {
                    inner: Some(Arc::new(Mutex::new(copied))),
                }
            }
        }
    }

    /// Arm (or re-arm) one site.
    pub fn arm(&mut self, spec: FailSpec) {
        let map = self
            .inner
            .get_or_insert_with(|| Arc::new(Mutex::new(BTreeMap::new())));
        let mut guard = map.lock().unwrap_or_else(|p| p.into_inner());
        guard.insert(
            spec.site,
            ArmedSite {
                probability: spec.probability,
                rng: TestRng::new(spec.seed),
                evaluations: 0,
                trips: 0,
            },
        );
    }

    /// Re-arm a site on a *shared* handle (e.g. a running server's
    /// registry). Returns false on a disabled registry — arming through a
    /// shared reference requires the map to exist already, so a registry
    /// explicitly built as disabled stays branch-cheap.
    pub fn rearm(&self, spec: FailSpec) -> bool {
        let Some(m) = &self.inner else {
            return false;
        };
        let mut guard = m.lock().unwrap_or_else(|p| p.into_inner());
        guard.insert(
            spec.site,
            ArmedSite {
                probability: spec.probability,
                rng: TestRng::new(spec.seed),
                evaluations: 0,
                trips: 0,
            },
        );
        true
    }

    /// Disarm one site on a shared handle; returns whether it was armed.
    pub fn disarm(&self, site: &str) -> bool {
        let Some(m) = &self.inner else {
            return false;
        };
        let mut guard = m.lock().unwrap_or_else(|p| p.into_inner());
        guard.remove(site).is_some()
    }

    /// Anything armed at all?
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Should the given site fail now? Draws from the site's PRNG (and
    /// advances it), so repeated evaluations follow the seeded schedule.
    pub fn should_fail(&self, site: &str) -> bool {
        let Some(m) = &self.inner else {
            return false;
        };
        let mut guard = m.lock().unwrap_or_else(|p| p.into_inner());
        let Some(armed) = guard.get_mut(site) else {
            return false;
        };
        armed.evaluations += 1;
        let trip = if armed.probability >= 1.0 {
            true
        } else if armed.probability <= 0.0 {
            false
        } else {
            armed.rng.chance(armed.probability)
        };
        if trip {
            armed.trips += 1;
        }
        trip
    }

    /// Per-site (evaluations, trips) counters, for reports.
    pub fn counters(&self) -> BTreeMap<String, (u64, u64)> {
        match &self.inner {
            None => BTreeMap::new(),
            Some(m) => {
                let guard = m.lock().unwrap_or_else(|p| p.into_inner());
                guard
                    .iter()
                    .map(|(k, v)| (k.clone(), (v.evaluations, v.trips)))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_never_fails() {
        let reg = FailpointRegistry::disabled();
        assert!(!reg.enabled());
        for site in sites::ALL {
            assert!(!reg.should_fail(site));
        }
    }

    #[test]
    fn probability_one_always_trips_and_zero_never() {
        let reg = FailpointRegistry::from_specs(&[
            FailSpec {
                site: sites::SCAN_TABLE.to_string(),
                probability: 1.0,
                seed: 1,
            },
            FailSpec {
                site: sites::SCAN_INDEX.to_string(),
                probability: 0.0,
                seed: 1,
            },
        ]);
        for _ in 0..50 {
            assert!(reg.should_fail(sites::SCAN_TABLE));
            assert!(!reg.should_fail(sites::SCAN_INDEX));
        }
        let counters = reg.counters();
        assert_eq!(counters[sites::SCAN_TABLE], (50, 50));
        assert_eq!(counters[sites::SCAN_INDEX], (50, 0));
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let draw = |seed: u64| -> Vec<bool> {
            let reg = FailpointRegistry::from_specs(&[FailSpec {
                site: sites::SPOOL_MATERIALIZE.to_string(),
                probability: 0.5,
                seed,
            }]);
            (0..64)
                .map(|_| reg.should_fail(sites::SPOOL_MATERIALIZE))
                .collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43), "different seeds diverge");
        let hits = draw(42).iter().filter(|&&b| b).count();
        assert!((10..=54).contains(&hits), "p=0.5 should trip roughly half");
    }

    #[test]
    fn spec_parsing() {
        let s = FailSpec::parse("spool.materialize:0.5:7").unwrap();
        assert_eq!(s.site, "spool.materialize");
        assert_eq!(s.probability, 0.5);
        assert_eq!(s.seed, 7);
        let s = FailSpec::parse("scan.table:1.0").unwrap();
        assert_eq!(s.seed, 0x5EED);
        assert!(FailSpec::parse("bad").is_err());
        assert!(FailSpec::parse("x:2.0").is_err());
        assert!(FailSpec::parse(":0.5").is_err());
        assert!(FailSpec::parse("x:0.5:1:9").is_err());
    }

    #[test]
    fn budget_zero_deadline_trips_immediately() {
        let clock = Budget::with_time_ms(0).start();
        assert!(clock.expired());
        let trip = clock.check_time("cse-phase").unwrap_err();
        assert_eq!(trip.reason, Reason::OptDeadline);
        let ev = trip.event(Rung::FullCse, Rung::CappedCse);
        assert_eq!(ev.reason.code(), "OPT_DEADLINE");
        assert_eq!(ev.to, Rung::CappedCse);
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let clock = Budget::unlimited().start();
        assert!(!clock.expired());
        assert!(clock.check_time("x").is_ok());
        assert!(clock.check_memo(usize::MAX, "x").is_ok());
        assert!(clock.check_candidates(usize::MAX, "x").is_ok());
    }

    #[test]
    fn structural_caps_trip() {
        let clock = Budget {
            max_memo_gexprs: Some(10),
            max_candidates: Some(2),
            ..Budget::default()
        }
        .start();
        assert!(clock.check_memo(10, "x").is_ok());
        assert_eq!(
            clock.check_memo(11, "x").unwrap_err().reason,
            Reason::OptMemoCap
        );
        assert!(clock.check_candidates(2, "x").is_ok());
        assert_eq!(
            clock.check_candidates(3, "x").unwrap_err().reason,
            Reason::OptCandidateCap
        );
    }

    #[test]
    fn rung_ladder_order() {
        assert_eq!(Rung::FullCse.next_down(), Some(Rung::CappedCse));
        assert_eq!(Rung::CappedCse.next_down(), Some(Rung::Baseline));
        assert_eq!(Rung::Baseline.next_down(), None);
        assert!(Rung::FullCse < Rung::Baseline);
    }

    #[test]
    fn cancel_token_explicit_and_deadline() {
        let t = CancelToken::never();
        assert!(!t.is_canceled());
        assert!(t.check("x").is_ok());
        let watchdog_handle = t.clone();
        watchdog_handle.cancel();
        assert!(t.is_explicitly_canceled(), "flag is shared across clones");
        assert_eq!(t.check("x").unwrap_err().reason, Reason::ReqCanceled);

        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.deadline_expired());
        assert_eq!(t.check("x").unwrap_err().reason, Reason::ReqDeadline);
        // A fresh-deadline child is live again but keeps the shared flag.
        let child = t.with_new_deadline(Duration::from_secs(3600));
        assert!(child.check("x").is_ok());
        t.cancel();
        assert_eq!(child.check("x").unwrap_err().reason, Reason::ReqCanceled);
    }

    #[test]
    fn budget_clock_reports_cancellation_before_deadline() {
        let cancel = CancelToken::never();
        let clock = Budget::with_time_ms(0).start_with(&cancel);
        // Deadline expired but not canceled: an ordinary budget trip.
        assert_eq!(
            clock.check_time("x").unwrap_err().reason,
            Reason::OptDeadline
        );
        cancel.cancel();
        let trip = clock.check_time("x").unwrap_err();
        assert_eq!(trip.reason, Reason::ReqCanceled);
        assert!(trip.reason.is_cancellation());
        assert!(!Reason::OptDeadline.is_cancellation());
    }

    #[test]
    fn clones_share_fault_schedule_and_forks_do_not() {
        let mut reg = FailpointRegistry::disabled();
        reg.arm(FailSpec {
            site: sites::SCAN_TABLE.to_string(),
            probability: 0.5,
            seed: 42,
        });
        let fork = reg.fork();
        let shared = reg.clone();
        let a: Vec<bool> = (0..32)
            .map(|_| reg.should_fail(sites::SCAN_TABLE))
            .collect();
        // The clone drew nothing itself, but its schedule advanced with the
        // original; the fork replays from the same seed state.
        let b: Vec<bool> = (0..32)
            .map(|_| fork.should_fail(sites::SCAN_TABLE))
            .collect();
        assert_eq!(a, b, "fork replays the schedule");
        assert_eq!(
            shared.counters()[sites::SCAN_TABLE].0,
            32,
            "clone shares counters"
        );
    }

    #[test]
    fn rearm_and_disarm_on_shared_handles() {
        let mut reg = FailpointRegistry::disabled();
        assert!(!reg.rearm(FailSpec {
            site: sites::SCAN_TABLE.to_string(),
            probability: 1.0,
            seed: 1,
        }));
        reg.arm(FailSpec {
            site: sites::SCAN_TABLE.to_string(),
            probability: 1.0,
            seed: 1,
        });
        let handle = reg.clone();
        assert!(handle.disarm(sites::SCAN_TABLE));
        assert!(!reg.should_fail(sites::SCAN_TABLE));
        assert!(handle.rearm(FailSpec {
            site: sites::SCAN_INDEX.to_string(),
            probability: 1.0,
            seed: 1,
        }));
        assert!(reg.should_fail(sites::SCAN_INDEX));
    }

    #[test]
    fn fail_grammar_rejects_unknown_sites_unless_allowed() {
        let specs = parse_fail_specs("spool.materialize:1.0, scan.table:0.5:7").unwrap();
        assert_eq!(specs.len(), 2);
        let err = parse_fail_specs("spool.materialze:1.0").unwrap_err();
        assert!(err.contains("unknown failpoint site"), "{err}");
        for site in sites::ALL {
            assert!(err.contains(site), "error must list {site}: {err}");
        }
        let specs = parse_fail_specs("allow-unknown,future.site:1.0").unwrap();
        assert_eq!(specs[0].site, "future.site");
        // Malformed probabilities stay rejected even with the escape hatch.
        assert!(parse_fail_specs("allow-unknown,scan.table:2.0").is_err());
        assert!(parse_fail_specs("scan.table:nope").is_err());
        assert!(parse_fail_specs("").unwrap().is_empty());
    }

    #[test]
    fn event_rendering_is_stable() {
        let ev = DegradationEvent::exec(Reason::ExecRowBudget, "statement 1", "breach");
        let text = ev.to_string();
        assert!(text.contains("[EXEC_ROW_BUDGET]"));
        assert!(text.contains("statement 1"));
        assert!(text.contains("full-cse -> baseline"));
    }

    #[test]
    fn deadline_exactly_now_counts_as_expired() {
        // The boundary is inclusive (`now >= deadline`): a zero-duration
        // deadline is expired at the instant it is minted, with no window
        // in which an attempt could sneak past it.
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.deadline_expired());
        assert!(t.is_canceled());
        assert!(!t.is_explicitly_canceled(), "deadline is not a cancel");
        let trip = t.check("boundary").expect_err("zero deadline trips");
        assert_eq!(trip.reason, Reason::ReqDeadline);
    }

    #[test]
    fn cancel_then_deadline_classifies_as_canceled() {
        // Explicit cancel happens first, deadline expires afterwards: the
        // explicit flag must win classification (REQ_CANCELED), matching
        // the serve layer's terminal-outcome rules.
        let t = CancelToken::with_deadline(Duration::ZERO);
        t.cancel();
        assert!(t.deadline_expired() && t.is_explicitly_canceled());
        let trip = t.check("both-tripped").expect_err("canceled");
        assert_eq!(trip.reason, Reason::ReqCanceled, "explicit cancel wins");
    }

    #[test]
    fn deadline_then_cancel_reclassifies_on_the_next_check() {
        // Deadline expires first and is observed as REQ_DEADLINE; a later
        // explicit cancel flips subsequent checks to REQ_CANCELED — the
        // flag dominates regardless of event order, so retry classification
        // never races the client's cancel.
        let t = CancelToken::with_deadline(Duration::ZERO);
        let first = t.check("pre-cancel").expect_err("deadline expired");
        assert_eq!(first.reason, Reason::ReqDeadline);
        t.cancel();
        let second = t.check("post-cancel").expect_err("now canceled");
        assert_eq!(second.reason, Reason::ReqCanceled);
    }

    #[test]
    fn derived_deadline_shares_the_cancel_flag_not_the_deadline() {
        let parent = CancelToken::with_deadline(Duration::ZERO);
        let fresh = parent.with_new_deadline(Duration::from_secs(3600));
        assert!(parent.deadline_expired());
        assert!(!fresh.deadline_expired(), "per-attempt deadline is fresh");
        assert!(!fresh.is_canceled());
        parent.cancel();
        assert!(
            fresh.is_explicitly_canceled(),
            "flag is shared across derivations"
        );
    }

    #[test]
    fn poisoned_registry_lock_recovers() {
        let reg = FailpointRegistry::from_specs(&[FailSpec {
            site: sites::SCAN_TABLE.to_string(),
            probability: 1.0,
            seed: 1,
        }]);
        // Poison the registry's mutex: panic while holding the guard on
        // another thread (tests live in the same module, so the private
        // `inner` field is reachable).
        let map = Arc::clone(reg.inner.as_ref().expect("armed registry has a map"));
        let _ = std::thread::spawn(move || {
            let _guard = map.lock().expect("first locker sees no poison");
            panic!("poison the failpoint registry");
        })
        .join();
        // Every shared-handle operation recovers instead of wedging the
        // fault schedule for all workers.
        assert!(reg.should_fail(sites::SCAN_TABLE), "p=1.0 still trips");
        assert!(reg.disarm(sites::SCAN_TABLE));
        assert!(!reg.should_fail(sites::SCAN_TABLE));
        assert!(reg.rearm(FailSpec {
            site: sites::SCAN_TABLE.to_string(),
            probability: 0.0,
            seed: 2,
        }));
        assert_eq!(reg.counters()[sites::SCAN_TABLE], (0, 0), "rearm resets");
    }
}
