//! Global memory governance: a byte budget shared by every in-flight
//! request.
//!
//! The per-statement [`crate::ExecLimits`] from the robustness PR bound one
//! statement's materialization; they are blind to *aggregate* pressure —
//! fifty concurrent spool-heavy batches each under its own limit can still
//! OOM the process. This module adds the cross-request layer:
//!
//! - [`MemoryGovernor`]: one shared byte pool. Requests take a
//!   [`MemReservation`] at admission; the pool can never over-commit.
//! - [`MemReservation`]: a request's grant. Execution charges bytes against
//!   it (growing the grant from the pool in chunks); exceeding the pool is
//!   a *recoverable* [`ReserveError`] that flows into the engine's
//!   baseline-retry machinery instead of an allocation failure.
//! - [`MemScope`]: hierarchical release-on-drop accounting — operators
//!   charge into a scope, the scope returns its bytes to the reservation on
//!   drop, the reservation returns its grant to the pool on drop. Nothing
//!   leaks on panic or early return.
//! - [`Pressure`]: three levels off pool occupancy. The serving layer maps
//!   Elevated → capped-cse planning, Critical → baseline-only planning and
//!   `SHED_MEMORY` admission sheds.
//!
//! Determinism: the [`crate::sites::MEM_RESERVE`] failpoint makes grant
//! growth fail on demand, so reservation-fault recovery is testable without
//! a real budget squeeze. Concurrency: the pool mutex is a
//! [`TrackedMutex`] (site `govern.memory`, measurable under `lock-stats`)
//! and the blocking-reserve / release-unblocks-waiter protocol is
//! model-checked by `cse_conc::models::GovernorModel`.
//!
//! Charging is lock-free in the common case: `used` and `granted` are
//! atomics, and the pool lock is taken only when the grant must grow
//! (amortized by [`GRANT_CHUNK`]) — execution row loops do not serialize on
//! the governor.

use crate::{sites, CancelToken, FailpointRegistry, Reason};
use cse_conc::TrackedMutex;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::time::Duration;

/// Grant growth quantum: a reservation that outgrows its grant asks the
/// pool for this much at a time, so hot-loop charges hit the pool lock
/// once per 256 KiB, not once per row chunk.
pub const GRANT_CHUNK: usize = 256 * 1024;

/// How close the pool is to its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Pressure {
    /// Plenty of headroom; full CSE planning.
    #[default]
    Normal,
    /// Above the elevated watermark; sharing is capped (spools are the
    /// memory hogs, so plan fewer of them).
    Elevated,
    /// Above the critical watermark; baseline-only planning and new
    /// admissions are shed with `SHED_MEMORY`.
    Critical,
}

impl Pressure {
    /// Stable textual form (reports, JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            Pressure::Normal => "normal",
            Pressure::Elevated => "elevated",
            Pressure::Critical => "critical",
        }
    }
}

impl fmt::Display for Pressure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a reservation or grant growth was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReserveError {
    /// The pool cannot cover the request without over-committing.
    Exhausted { requested: usize, available: usize },
    /// The `mem.reserve` failpoint tripped.
    Injected,
    /// The caller's cancel token tripped while waiting for room.
    Canceled { deadline: bool },
}

impl ReserveError {
    /// The stable reason code this failure degrades with.
    pub fn reason(&self) -> Reason {
        match self {
            ReserveError::Exhausted { .. } | ReserveError::Injected => Reason::MemReservation,
            ReserveError::Canceled { deadline: false } => Reason::ReqCanceled,
            ReserveError::Canceled { deadline: true } => Reason::ReqDeadline,
        }
    }
}

impl fmt::Display for ReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReserveError::Exhausted {
                requested,
                available,
            } => write!(
                f,
                "memory reservation exhausted: requested {requested} bytes, {available} available"
            ),
            ReserveError::Injected => {
                write!(
                    f,
                    "memory reservation fault injected at {}",
                    sites::MEM_RESERVE
                )
            }
            ReserveError::Canceled { deadline: false } => {
                write!(f, "canceled while waiting for memory")
            }
            ReserveError::Canceled { deadline: true } => {
                write!(f, "deadline expired while waiting for memory")
            }
        }
    }
}

struct Pool {
    reserved: usize,
}

struct GovernorInner {
    budget: usize,
    elevated_at: usize,
    critical_at: usize,
    pool: TrackedMutex<Pool>,
    released: Condvar,
}

/// The shared byte pool. Cloning is cheap and shares the pool.
#[derive(Clone)]
pub struct MemoryGovernor {
    inner: Arc<GovernorInner>,
}

impl fmt::Debug for MemoryGovernor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryGovernor")
            .field("budget", &self.inner.budget)
            .field("reserved", &self.reserved())
            .field("pressure", &self.pressure())
            .finish()
    }
}

impl MemoryGovernor {
    /// A governor with the default pressure watermarks (elevated at 70% of
    /// budget, critical at 90%).
    pub fn new(budget: usize) -> Self {
        MemoryGovernor::with_thresholds(budget, 0.7, 0.9)
    }

    /// A governor with explicit watermark fractions of the budget.
    pub fn with_thresholds(budget: usize, elevated: f64, critical: f64) -> Self {
        let frac = |f: f64| ((budget as f64) * f.clamp(0.0, 1.0)) as usize;
        MemoryGovernor {
            inner: Arc::new(GovernorInner {
                budget,
                elevated_at: frac(elevated),
                critical_at: frac(critical),
                pool: TrackedMutex::new("govern.memory", Pool { reserved: 0 }),
                released: Condvar::new(),
            }),
        }
    }

    /// The total byte budget.
    pub fn budget(&self) -> usize {
        self.inner.budget
    }

    /// Bytes currently reserved across all live reservations.
    pub fn reserved(&self) -> usize {
        self.inner.pool.lock().reserved
    }

    /// Bytes still available for new reservations.
    pub fn available(&self) -> usize {
        self.inner.budget.saturating_sub(self.reserved())
    }

    /// Current pressure level from pool occupancy.
    pub fn pressure(&self) -> Pressure {
        let reserved = self.reserved();
        if reserved >= self.inner.critical_at {
            Pressure::Critical
        } else if reserved >= self.inner.elevated_at {
            Pressure::Elevated
        } else {
            Pressure::Normal
        }
    }

    /// This governor's pool-lock counters (zeros unless `lock-stats`).
    pub fn lock_site_stats(&self) -> cse_conc::LockSiteStats {
        self.inner.pool.stats()
    }

    /// Reserve `bytes` immediately or refuse. The failpoint is evaluated
    /// before the pool is touched, so an injected fault never perturbs
    /// accounting.
    pub fn try_reserve(
        &self,
        bytes: usize,
        failpoints: Option<&FailpointRegistry>,
    ) -> Result<MemReservation, ReserveError> {
        if failpoints.is_some_and(|fp| fp.should_fail(sites::MEM_RESERVE)) {
            return Err(ReserveError::Injected);
        }
        let available;
        {
            let mut pool = self.inner.pool.lock();
            if pool.reserved + bytes <= self.inner.budget {
                pool.reserved += bytes;
                drop(pool);
                return Ok(self.reservation(bytes, failpoints));
            }
            available = self.inner.budget.saturating_sub(pool.reserved);
        }
        Err(ReserveError::Exhausted {
            requested: bytes,
            available,
        })
    }

    /// Reserve `bytes`, waiting for other reservations to release if the
    /// pool is currently full. A request larger than the whole budget is
    /// refused immediately (it can never be satisfied); the wait polls the
    /// cancel token so a watchdog or deadline unsticks a parked reserver.
    pub fn reserve_blocking(
        &self,
        bytes: usize,
        failpoints: Option<&FailpointRegistry>,
        cancel: &CancelToken,
    ) -> Result<MemReservation, ReserveError> {
        if failpoints.is_some_and(|fp| fp.should_fail(sites::MEM_RESERVE)) {
            return Err(ReserveError::Injected);
        }
        if bytes > self.inner.budget {
            return Err(ReserveError::Exhausted {
                requested: bytes,
                available: self.inner.budget,
            });
        }
        let mut pool = self.inner.pool.lock();
        loop {
            if cancel.is_explicitly_canceled() {
                return Err(ReserveError::Canceled { deadline: false });
            }
            if cancel.deadline_expired() {
                return Err(ReserveError::Canceled { deadline: true });
            }
            if pool.reserved + bytes <= self.inner.budget {
                pool.reserved += bytes;
                drop(pool);
                return Ok(self.reservation(bytes, failpoints));
            }
            // Timed wait so a cancel with no accompanying notify is still
            // observed promptly.
            let (g, _timed_out) = pool.wait_timeout_on(&self.inner.released, POLL_TICK);
            pool = g;
        }
    }

    fn reservation(
        &self,
        granted: usize,
        failpoints: Option<&FailpointRegistry>,
    ) -> MemReservation {
        MemReservation {
            inner: Arc::new(ReservationInner {
                governor: self.clone(),
                granted: AtomicUsize::new(granted),
                used: AtomicUsize::new(0),
                failpoints: failpoints.cloned(),
            }),
        }
    }

    /// Grow an existing grant by `extra` bytes; refuses rather than
    /// over-committing.
    fn grow(&self, extra: usize) -> Result<(), ReserveError> {
        let mut pool = self.inner.pool.lock();
        if pool.reserved + extra <= self.inner.budget {
            pool.reserved += extra;
            Ok(())
        } else {
            let available = self.inner.budget.saturating_sub(pool.reserved);
            Err(ReserveError::Exhausted {
                requested: extra,
                available,
            })
        }
    }

    /// Return `bytes` to the pool and wake every parked reserver (each
    /// re-checks fit; waking all is the lost-wakeup-proof choice and the
    /// governor model checks release always unblocks a fitting waiter).
    fn release(&self, bytes: usize) {
        {
            let mut pool = self.inner.pool.lock();
            pool.reserved = pool.reserved.saturating_sub(bytes);
        }
        self.inner.released.notify_all();
    }
}

/// How long a parked reserver sleeps between cancel-token checks.
const POLL_TICK: Duration = Duration::from_millis(1);

struct ReservationInner {
    governor: MemoryGovernor,
    /// Bytes this reservation holds out of the pool.
    granted: AtomicUsize,
    /// Bytes execution has charged against the grant.
    used: AtomicUsize,
    failpoints: Option<FailpointRegistry>,
}

impl Drop for ReservationInner {
    fn drop(&mut self) {
        let granted = self.granted.load(Ordering::SeqCst);
        self.governor.release(granted);
    }
}

/// One request's slice of the pool. Cloning shares the grant (the serving
/// watchdog holds a clone to observe [`MemReservation::over_grant`]); the
/// grant returns to the pool when the last clone drops.
#[derive(Clone)]
pub struct MemReservation {
    inner: Arc<ReservationInner>,
}

impl fmt::Debug for MemReservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemReservation")
            .field("granted", &self.granted())
            .field("used", &self.used())
            .finish()
    }
}

impl MemReservation {
    /// Bytes currently charged.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::SeqCst)
    }

    /// Bytes held out of the pool.
    pub fn granted(&self) -> usize {
        self.inner.granted.load(Ordering::SeqCst)
    }

    /// Has usage outrun the grant? Only unchecked charges (recovery mode)
    /// can put a reservation here; the serving watchdog cancels requests
    /// in this state.
    pub fn over_grant(&self) -> bool {
        self.used() > self.granted()
    }

    /// The governor this reservation draws from.
    pub fn governor(&self) -> &MemoryGovernor {
        &self.inner.governor
    }

    /// Open a release-on-drop accounting scope.
    pub fn scope(&self) -> MemScope {
        MemScope {
            reservation: self.clone(),
            charged: 0,
        }
    }

    /// Charge `bytes`, growing the grant from the pool in
    /// [`GRANT_CHUNK`] steps when needed. On refusal (pool exhausted or
    /// the `mem.reserve` failpoint trips) the charge is rolled back —
    /// `used` is unchanged — and the caller should degrade.
    pub fn charge(&self, bytes: usize) -> Result<(), ReserveError> {
        let new_used = self.inner.used.fetch_add(bytes, Ordering::SeqCst) + bytes;
        let granted = self.inner.granted.load(Ordering::SeqCst);
        if new_used <= granted {
            return Ok(());
        }
        let shortfall = new_used - granted;
        let extra = shortfall.div_ceil(GRANT_CHUNK).max(1) * GRANT_CHUNK;
        let refused = if self
            .inner
            .failpoints
            .as_ref()
            .is_some_and(|fp| fp.should_fail(sites::MEM_RESERVE))
        {
            Some(ReserveError::Injected)
        } else {
            self.inner.governor.grow(extra).err()
        };
        match refused {
            None => {
                self.inner.granted.fetch_add(extra, Ordering::SeqCst);
                Ok(())
            }
            Some(e) => {
                self.uncharge(bytes);
                Err(e)
            }
        }
    }

    /// Charge without the possibility of refusal: no failpoint, and the
    /// grant grows only if the pool has room — otherwise `used` runs past
    /// `granted` and [`MemReservation::over_grant`] turns true. Recovery
    /// (baseline retry) charges this way so the retry itself cannot fault,
    /// while a runaway retry stays visible to the watchdog.
    pub fn charge_unchecked(&self, bytes: usize) {
        let new_used = self.inner.used.fetch_add(bytes, Ordering::SeqCst) + bytes;
        let granted = self.inner.granted.load(Ordering::SeqCst);
        if new_used > granted {
            let extra = (new_used - granted).div_ceil(GRANT_CHUNK).max(1) * GRANT_CHUNK;
            if self.inner.governor.grow(extra).is_ok() {
                self.inner.granted.fetch_add(extra, Ordering::SeqCst);
            }
        }
    }

    /// Return `bytes` of usage (the grant is kept — it returns to the pool
    /// when the reservation drops).
    pub fn uncharge(&self, bytes: usize) {
        let _ = self
            .inner
            .used
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |u| {
                Some(u.saturating_sub(bytes))
            });
    }
}

/// Hierarchical release-on-drop accounting: operators charge into a scope;
/// whatever the scope accumulated flows back to the reservation when it
/// drops, however the enclosing code exits.
pub struct MemScope {
    reservation: MemReservation,
    charged: usize,
}

impl MemScope {
    /// A child scope charging the same reservation.
    pub fn child(&self) -> MemScope {
        self.reservation.scope()
    }

    /// Bytes this scope currently holds.
    pub fn charged(&self) -> usize {
        self.charged
    }

    /// Charge `bytes` through to the reservation; on refusal the scope is
    /// unchanged.
    pub fn charge(&mut self, bytes: usize) -> Result<(), ReserveError> {
        self.reservation.charge(bytes)?;
        self.charged += bytes;
        Ok(())
    }

    /// Charge without the possibility of refusal (recovery mode).
    pub fn charge_unchecked(&mut self, bytes: usize) {
        self.reservation.charge_unchecked(bytes);
        self.charged += bytes;
    }

    /// Return `bytes` early (e.g. a spool rolled back mid-scope).
    pub fn uncharge(&mut self, bytes: usize) {
        let give_back = bytes.min(self.charged);
        self.reservation.uncharge(give_back);
        self.charged -= give_back;
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        self.reservation.uncharge(self.charged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailSpec;
    use std::sync::mpsc::sync_channel;
    use std::thread;

    fn armed(prob: f64) -> FailpointRegistry {
        let mut fp = FailpointRegistry::disabled();
        fp.arm(FailSpec {
            site: sites::MEM_RESERVE.to_string(),
            probability: prob,
            seed: 42,
        });
        fp
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let gov = MemoryGovernor::new(1000);
        let r = gov.try_reserve(400, None).expect("fits");
        assert_eq!(gov.reserved(), 400);
        assert_eq!(r.granted(), 400);
        drop(r);
        assert_eq!(gov.reserved(), 0);
    }

    #[test]
    fn pool_never_over_commits() {
        let gov = MemoryGovernor::new(1000);
        let _a = gov.try_reserve(600, None).expect("fits");
        let err = gov.try_reserve(600, None).expect_err("would over-commit");
        match err {
            ReserveError::Exhausted {
                requested,
                available,
            } => {
                assert_eq!(requested, 600);
                assert_eq!(available, 400);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert_eq!(gov.reserved(), 600);
    }

    #[test]
    fn charge_grows_grant_in_chunks() {
        let gov = MemoryGovernor::new(10 * GRANT_CHUNK);
        let r = gov.try_reserve(1024, None).expect("fits");
        r.charge(2048).expect("grows");
        assert!(r.granted() >= r.used());
        assert_eq!(r.used(), 2048);
        // Grant growth is chunked, so the pool sees one chunk, not 1 KiB.
        assert_eq!(gov.reserved(), 1024 + GRANT_CHUNK);
    }

    #[test]
    fn refused_charge_leaves_used_unchanged() {
        let gov = MemoryGovernor::new(GRANT_CHUNK);
        let r = gov.try_reserve(GRANT_CHUNK, None).expect("fits");
        r.charge(GRANT_CHUNK / 2).expect("within grant");
        let before = r.used();
        let err = r.charge(GRANT_CHUNK).expect_err("pool exhausted");
        assert!(matches!(err, ReserveError::Exhausted { .. }));
        assert_eq!(r.used(), before, "refused charge rolled back");
        assert!(!r.over_grant());
    }

    #[test]
    fn unchecked_charge_runs_past_grant_and_watchdog_sees_it() {
        let gov = MemoryGovernor::new(GRANT_CHUNK);
        let r = gov.try_reserve(GRANT_CHUNK, None).expect("fits");
        r.charge_unchecked(3 * GRANT_CHUNK);
        assert!(r.over_grant());
        assert_eq!(gov.reserved(), GRANT_CHUNK, "pool was not over-committed");
    }

    #[test]
    fn failpoint_injects_reserve_fault() {
        let fp = armed(1.0);
        let gov = MemoryGovernor::new(1 << 30);
        assert!(matches!(
            gov.try_reserve(1, Some(&fp)),
            Err(ReserveError::Injected)
        ));
        // Disarmed, the same reserve succeeds and later charges inherit the
        // registry for grow-time injection.
        fp.disarm(sites::MEM_RESERVE);
        let r = gov.try_reserve(1024, Some(&fp)).expect("disarmed");
        fp.rearm(FailSpec {
            site: sites::MEM_RESERVE.to_string(),
            probability: 1.0,
            seed: 42,
        });
        assert!(matches!(
            r.charge(GRANT_CHUNK * 2),
            Err(ReserveError::Injected)
        ));
        assert_eq!(r.used(), 0, "injected grow rolled the charge back");
    }

    #[test]
    fn scope_releases_on_drop_and_child_nests() {
        let gov = MemoryGovernor::new(1 << 20);
        let r = gov.try_reserve(1 << 20, None).expect("fits");
        {
            let mut outer = r.scope();
            outer.charge(100).expect("fits");
            {
                let mut inner = outer.child();
                inner.charge(50).expect("fits");
                assert_eq!(r.used(), 150);
            }
            assert_eq!(r.used(), 100, "child scope released on drop");
            outer.uncharge(30);
            assert_eq!(r.used(), 70);
        }
        assert_eq!(r.used(), 0, "outer scope released on drop");
    }

    #[test]
    fn blocking_reserve_waits_for_release() {
        let gov = MemoryGovernor::new(1000);
        let held = gov.try_reserve(900, None).expect("fits");
        let gov2 = gov.clone();
        let (tx, rx) = sync_channel(1);
        let waiter = thread::spawn(move || {
            let r = gov2.reserve_blocking(500, None, &CancelToken::never());
            tx.send(()).expect("receiver alive");
            r
        });
        // The waiter cannot proceed while 900 is held.
        assert!(rx.recv_timeout(Duration::from_millis(20)).is_err());
        drop(held);
        let r = waiter.join().expect("no panic").expect("unblocked");
        assert_eq!(r.granted(), 500);
        assert_eq!(gov.reserved(), 500);
    }

    #[test]
    fn blocking_reserve_observes_cancel_and_deadline() {
        let gov = MemoryGovernor::new(100);
        let _held = gov.try_reserve(100, None).expect("fits");
        let cancel = CancelToken::never();
        cancel.cancel();
        assert_eq!(
            gov.reserve_blocking(50, None, &cancel).err(),
            Some(ReserveError::Canceled { deadline: false })
        );
        let expired = CancelToken::with_deadline(Duration::from_millis(0));
        assert_eq!(
            gov.reserve_blocking(50, None, &expired).err(),
            Some(ReserveError::Canceled { deadline: true })
        );
        // Over-budget requests fail fast even with a live token.
        assert!(matches!(
            gov.reserve_blocking(101, None, &CancelToken::never()),
            Err(ReserveError::Exhausted { .. })
        ));
    }

    #[test]
    fn pressure_levels_track_occupancy() {
        let gov = MemoryGovernor::new(1000);
        assert_eq!(gov.pressure(), Pressure::Normal);
        let _a = gov.try_reserve(700, None).expect("fits");
        assert_eq!(gov.pressure(), Pressure::Elevated);
        let _b = gov.try_reserve(200, None).expect("fits");
        assert_eq!(gov.pressure(), Pressure::Critical);
        drop(_b);
        assert_eq!(gov.pressure(), Pressure::Elevated);
    }

    #[test]
    fn reason_codes_are_stable() {
        assert_eq!(
            ReserveError::Exhausted {
                requested: 1,
                available: 0
            }
            .reason()
            .code(),
            "EXEC_MEM_RESERVATION"
        );
        assert_eq!(Reason::MemPressure.code(), "MEM_PRESSURE");
        assert_eq!(
            ReserveError::Canceled { deadline: true }.reason().code(),
            "REQ_DEADLINE"
        );
    }
}
