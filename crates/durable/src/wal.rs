//! WAL record framing and log scanning.
//!
//! Frame layout (all little-endian):
//!
//! ```text
//! | len: u32 | crc: u32 | lsn: u64 | payload: len bytes |
//! ```
//!
//! `crc` is CRC-32 over `lsn || payload`, so a bit flip anywhere in the
//! record body or its sequence number is detected. `len` itself is
//! implicitly covered: a corrupted length either lands the cursor outside
//! the buffer (torn tail) or on bytes that fail the CRC.
//!
//! Scanning distinguishes two failure shapes:
//!
//! - **torn tail** — the final region of the log is an incomplete or
//!   checksum-failing frame with nothing after it. This is the expected
//!   residue of a crash mid-append; recovery keeps the durable prefix and
//!   reports [`TailStatus::TornTail`] (`WAL_TORN_TAIL`).
//! - **mid-log corruption** — a frame fails its checksum (or frames go
//!   out of order) while later bytes exist. Replaying past it could
//!   silently drop acknowledged records, so this is a hard
//!   [`DurableError::CorruptFrame`] (`WAL_CORRUPT_FRAME`).

use crate::crc::crc32;
use crate::{DurableError, TailStatus};

/// Bytes before the payload: `len` + `crc` + `lsn`.
pub const FRAME_HEADER: usize = 16;

/// Upper bound on a single frame payload; a `len` beyond this is treated
/// as corruption rather than attempted as an allocation.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// Encode one record frame.
pub fn encode_frame(lsn: u64, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + payload.len());
    body.extend_from_slice(&lsn.to_le_bytes());
    body.extend_from_slice(payload);
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Result of scanning a WAL image.
#[derive(Debug)]
pub struct WalScan {
    /// Valid `(lsn, payload)` records in log order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// How the log ended.
    pub tail: TailStatus,
    /// Bytes of the validated prefix (where a torn tail begins).
    pub durable_bytes: usize,
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn read_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// Scan a WAL image into records, tolerating a torn tail and rejecting
/// mid-log corruption.
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan, DurableError> {
    let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut pos = 0usize;
    let mut last_lsn = 0u64;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER {
            return Ok(WalScan {
                records,
                tail: TailStatus::TornTail {
                    lost_bytes: remaining as u64,
                },
                durable_bytes: pos,
            });
        }
        let len = read_u32(&bytes[pos..]) as usize;
        let frame_end = pos
            .checked_add(FRAME_HEADER)
            .and_then(|p| p.checked_add(len));
        let torn = len > MAX_PAYLOAD
            || match frame_end {
                Some(e) => e > bytes.len(),
                None => true,
            };
        if torn {
            // The claimed frame runs off the end of the log. If this is
            // the region a crash tore, everything before it is intact; a
            // corrupted length field mid-log is indistinguishable from a
            // torn tail here, and either way nothing after `pos` can be
            // parsed, so the durable prefix is what recovery keeps.
            return Ok(WalScan {
                records,
                tail: TailStatus::TornTail {
                    lost_bytes: (bytes.len() - pos) as u64,
                },
                durable_bytes: pos,
            });
        }
        let frame_end = pos + FRAME_HEADER + len;
        let stored_crc = read_u32(&bytes[pos + 4..]);
        let body = &bytes[pos + 8..frame_end];
        let is_last = frame_end == bytes.len();
        if crc32(body) != stored_crc {
            if is_last {
                return Ok(WalScan {
                    records,
                    tail: TailStatus::TornTail {
                        lost_bytes: (bytes.len() - pos) as u64,
                    },
                    durable_bytes: pos,
                });
            }
            return Err(DurableError::CorruptFrame { at: pos as u64 });
        }
        let lsn = read_u64(body);
        if lsn <= last_lsn {
            return Err(DurableError::CorruptFrame { at: pos as u64 });
        }
        last_lsn = lsn;
        records.push((lsn, body[8..].to_vec()));
        pos = frame_end;
    }
    Ok(WalScan {
        records,
        tail: TailStatus::Clean,
        durable_bytes: pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(records: &[(u64, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        for (lsn, p) in records {
            out.extend_from_slice(&encode_frame(*lsn, p));
        }
        out
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let log = log_of(&[(1, b"alpha"), (2, b""), (3, b"gamma")]);
        let scan = scan_wal(&log).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.durable_bytes, log.len());
        assert_eq!(
            scan.records,
            vec![
                (1, b"alpha".to_vec()),
                (2, Vec::new()),
                (3, b"gamma".to_vec())
            ]
        );
    }

    #[test]
    fn empty_log_is_clean() {
        let scan = scan_wal(&[]).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.tail, TailStatus::Clean);
    }

    #[test]
    fn torn_tail_keeps_prefix() {
        let mut log = log_of(&[(1, b"alpha"), (2, b"beta")]);
        let full = log.len();
        log.extend_from_slice(&encode_frame(3, b"gamma")[..7]);
        let scan = scan_wal(&log).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.durable_bytes, full);
        assert!(matches!(scan.tail, TailStatus::TornTail { lost_bytes: 7 }));
    }

    #[test]
    fn corrupt_last_frame_is_torn_tail() {
        let mut log = log_of(&[(1, b"alpha"), (2, b"beta")]);
        let n = log.len();
        log[n - 1] ^= 0x40;
        let scan = scan_wal(&log).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(matches!(scan.tail, TailStatus::TornTail { .. }));
    }

    #[test]
    fn corrupt_mid_frame_is_hard_error() {
        let mut log = log_of(&[(1, b"alpha"), (2, b"beta")]);
        // Flip a payload bit of the *first* frame: valid data follows, so
        // this must not be silently treated as a torn tail.
        log[FRAME_HEADER] ^= 0x01;
        let err = scan_wal(&log).unwrap_err();
        assert!(matches!(err, DurableError::CorruptFrame { at: 0 }));
        assert_eq!(err.code(), "WAL_CORRUPT_FRAME");
    }

    #[test]
    fn out_of_order_lsn_is_corruption() {
        let log = log_of(&[(2, b"x"), (2, b"y")]);
        assert!(matches!(
            scan_wal(&log),
            Err(DurableError::CorruptFrame { .. })
        ));
    }

    #[test]
    fn insane_length_is_torn() {
        let mut log = log_of(&[(1, b"ok")]);
        let keep = log.len();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&[0u8; 12]);
        let scan = scan_wal(&log).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.durable_bytes, keep);
        assert!(matches!(scan.tail, TailStatus::TornTail { .. }));
    }
}
