//! Binary codec for WAL payloads: little-endian, length-prefixed, no
//! self-description (the frame CRC is what detects corruption; the codec
//! only needs to fail cleanly on garbage that happens to checksum).
//!
//! Encoded shapes: [`Value`], rows, [`Schema`], [`Table`], [`DeltaTable`]
//! and finally [`CatalogMutation`], which is what one WAL record carries.

use crate::DurableError;
use cse_storage::delta::DeltaTable;
use cse_storage::schema::{ColumnDef, Schema};
use cse_storage::table::{row, Row, Table};
use cse_storage::value::{DataType, Value};
use cse_storage::CatalogMutation;

/// Decode cursor over a payload slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated(what: &'static str) -> DurableError {
    DurableError::Codec { what }
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DurableError> {
        let end = self.pos.checked_add(n).ok_or_else(|| truncated(what))?;
        if end > self.buf.len() {
            return Err(truncated(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, DurableError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, DurableError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, DurableError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn str(&mut self, what: &'static str) -> Result<String, DurableError> {
        let len = self.u32(what)? as usize;
        let b = self.take(len, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| truncated(what))
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn data_type_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Date => 3,
        DataType::Bool => 4,
    }
}

fn data_type_of(tag: u8) -> Result<DataType, DurableError> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Date,
        4 => DataType::Bool,
        _ => return Err(truncated("data-type tag")),
    })
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            out.push(2);
            put_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Date(d) => {
            out.push(4);
            put_u32(out, *d as u32);
        }
        Value::Bool(b) => {
            out.push(5);
            out.push(*b as u8);
        }
    }
}

fn read_value(r: &mut Reader) -> Result<Value, DurableError> {
    Ok(match r.u8("value tag")? {
        0 => Value::Null,
        1 => Value::Int(r.u64("int value")? as i64),
        2 => Value::Float(f64::from_bits(r.u64("float value")?)),
        3 => Value::str(r.str("string value")?),
        4 => Value::Date(r.u32("date value")? as i32),
        5 => Value::Bool(r.u8("bool value")? != 0),
        _ => return Err(truncated("value tag")),
    })
}

fn put_schema(out: &mut Vec<u8>, s: &Schema) {
    put_u32(out, s.len() as u32);
    for c in s.columns() {
        put_str(out, &c.name);
        out.push(data_type_tag(c.data_type));
        out.push(c.nullable as u8);
    }
}

fn read_schema(r: &mut Reader) -> Result<Schema, DurableError> {
    let n = r.u32("schema column count")? as usize;
    if n > 1 << 16 {
        return Err(truncated("schema column count"));
    }
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str("column name")?;
        let dt = data_type_of(r.u8("column type")?)?;
        let nullable = r.u8("column nullable flag")? != 0;
        let mut c = ColumnDef::new(name, dt);
        if nullable {
            c = c.nullable();
        }
        cols.push(c);
    }
    Ok(Schema::new(cols))
}

fn put_rows(out: &mut Vec<u8>, rows: &[Row]) {
    put_u32(out, rows.len() as u32);
    for r in rows {
        for v in r.iter() {
            put_value(out, v);
        }
    }
}

fn read_rows(r: &mut Reader, arity: usize) -> Result<Vec<Row>, DurableError> {
    let n = r.u32("row count")? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(read_value(r)?);
        }
        rows.push(row(vals));
    }
    Ok(rows)
}

fn put_table(out: &mut Vec<u8>, t: &Table) {
    put_str(out, t.name());
    put_schema(out, t.schema());
    put_rows(out, t.rows());
}

fn read_table(r: &mut Reader) -> Result<Table, DurableError> {
    let name = r.str("table name")?;
    let schema = read_schema(r)?;
    let arity = schema.len();
    let rows = read_rows(r, arity)?;
    Ok(Table::with_rows(name, schema, rows))
}

/// Serialize one catalog mutation into a WAL payload.
pub fn encode_mutation(m: &CatalogMutation) -> Vec<u8> {
    let mut out = Vec::new();
    match m {
        CatalogMutation::RegisterTable { table } => {
            out.push(0);
            put_table(&mut out, table);
        }
        CatalogMutation::ReplaceTable { table } => {
            out.push(1);
            put_table(&mut out, table);
        }
        CatalogMutation::DropTable { name } => {
            out.push(2);
            put_str(&mut out, name);
        }
        CatalogMutation::CreateBtreeIndex { table, column } => {
            out.push(3);
            put_str(&mut out, table);
            put_str(&mut out, column);
        }
        CatalogMutation::CreateHashIndex { table, column } => {
            out.push(4);
            put_str(&mut out, table);
            put_str(&mut out, column);
        }
        CatalogMutation::RegisterView {
            name,
            definition_sql,
        } => {
            out.push(5);
            put_str(&mut out, name);
            put_str(&mut out, definition_sql);
        }
        CatalogMutation::ApplyDelta { delta } => {
            out.push(6);
            put_str(&mut out, &delta.base);
            put_schema(&mut out, delta.inserts.schema());
            put_rows(&mut out, delta.inserts.rows());
            put_rows(&mut out, delta.deletes.rows());
        }
    }
    out
}

/// Decode one catalog mutation from a WAL payload. The payload has already
/// passed the frame CRC; decode errors therefore indicate corruption that
/// happened to checksum, and are reported, never ignored.
pub fn decode_mutation(payload: &[u8]) -> Result<CatalogMutation, DurableError> {
    let mut r = Reader::new(payload);
    let m = match r.u8("mutation tag")? {
        0 => CatalogMutation::RegisterTable {
            table: read_table(&mut r)?,
        },
        1 => CatalogMutation::ReplaceTable {
            table: read_table(&mut r)?,
        },
        2 => CatalogMutation::DropTable {
            name: r.str("table name")?,
        },
        3 => CatalogMutation::CreateBtreeIndex {
            table: r.str("table name")?,
            column: r.str("column name")?,
        },
        4 => CatalogMutation::CreateHashIndex {
            table: r.str("table name")?,
            column: r.str("column name")?,
        },
        5 => CatalogMutation::RegisterView {
            name: r.str("view name")?,
            definition_sql: r.str("view definition")?,
        },
        6 => {
            let base = r.str("delta base")?;
            let schema = read_schema(&mut r)?;
            let arity = schema.len();
            let inserts = read_rows(&mut r, arity)?;
            let deletes = read_rows(&mut r, arity)?;
            let mut delta = DeltaTable::new(base, &schema);
            delta.inserts.extend(inserts);
            delta.deletes.extend(deletes);
            CatalogMutation::ApplyDelta { delta }
        }
        _ => return Err(truncated("mutation tag")),
    };
    if !r.is_done() {
        return Err(truncated("trailing bytes after mutation"));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_storage::delta::DeltaAction;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("s", DataType::Str).nullable(),
            ColumnDef::new("d", DataType::Date),
            ColumnDef::new("f", DataType::Float),
            ColumnDef::new("b", DataType::Bool),
        ]);
        let mut t = Table::new("Mixed", schema.clone());
        t.push(row(vec![
            Value::Int(-3),
            Value::str("héllo"),
            Value::Date(9876),
            Value::Float(1.25),
            Value::Bool(true),
        ]))
        .unwrap();
        t.push(row(vec![
            Value::Int(7),
            Value::Null,
            Value::Date(-12),
            Value::Float(f64::NEG_INFINITY),
            Value::Bool(false),
        ]))
        .unwrap();
        t
    }

    fn roundtrip(m: &CatalogMutation) -> CatalogMutation {
        decode_mutation(&encode_mutation(m)).unwrap()
    }

    #[test]
    fn table_mutations_roundtrip() {
        let m = roundtrip(&CatalogMutation::RegisterTable {
            table: sample_table(),
        });
        let CatalogMutation::RegisterTable { table } = m else {
            panic!("wrong variant");
        };
        let orig = sample_table();
        assert_eq!(table.name(), orig.name());
        assert_eq!(table.schema().as_ref(), orig.schema().as_ref());
        assert_eq!(table.rows(), orig.rows());
    }

    #[test]
    fn scalar_mutations_roundtrip() {
        assert!(matches!(
            roundtrip(&CatalogMutation::DropTable { name: "x".into() }),
            CatalogMutation::DropTable { name } if name == "x"
        ));
        assert!(matches!(
            roundtrip(&CatalogMutation::CreateBtreeIndex {
                table: "t".into(),
                column: "c".into()
            }),
            CatalogMutation::CreateBtreeIndex { table, column } if table == "t" && column == "c"
        ));
        assert!(matches!(
            roundtrip(&CatalogMutation::RegisterView {
                name: "v".into(),
                definition_sql: "select 1".into()
            }),
            CatalogMutation::RegisterView { name, .. } if name == "v"
        ));
    }

    #[test]
    fn delta_roundtrips() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let mut d = DeltaTable::new("base", &schema);
        d.record(DeltaAction::Insert, row(vec![Value::Int(1)]))
            .unwrap();
        d.record(DeltaAction::Delete, row(vec![Value::Int(2)]))
            .unwrap();
        let m = roundtrip(&CatalogMutation::ApplyDelta { delta: d });
        let CatalogMutation::ApplyDelta { delta } = m else {
            panic!("wrong variant");
        };
        assert_eq!(delta.base, "base");
        assert_eq!(delta.insert_count(), 1);
        assert_eq!(delta.delete_count(), 1);
    }

    #[test]
    fn garbage_fails_cleanly() {
        assert!(decode_mutation(&[]).is_err());
        assert!(decode_mutation(&[99]).is_err());
        assert!(decode_mutation(&[2, 255, 255, 255, 255]).is_err());
        // Trailing junk after a valid mutation is corruption, not slack.
        let mut bytes = encode_mutation(&CatalogMutation::DropTable { name: "t".into() });
        bytes.push(0);
        assert!(decode_mutation(&bytes).is_err());
    }
}
