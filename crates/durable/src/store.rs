//! Storage backends for the WAL and snapshot objects.
//!
//! [`Store`] abstracts the two durable objects the recovery protocol
//! needs: an append-only WAL stream with an explicit sync barrier, and a
//! snapshot slot with atomic publish (write-temp, sync, rename).
//!
//! Two implementations:
//!
//! - [`SimStore`] — an in-memory simulated block device with a
//!   deterministic [`SimStore::crash`] that applies a seeded-random torn
//!   subset of the unsynced writes (torn tail, dropped appends, bit
//!   flips). The crash-restart harness uses it to model power loss
//!   without killing the test process.
//! - [`FileStore`] — a real filesystem directory, used by
//!   `qserve --data-dir`, where the crash is a genuine process kill.

use crate::DurableError;
use cse_storage::testkit::TestRng;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Durable object store used by the WAL and snapshot layers.
pub trait Store {
    /// The WAL image a reader would observe (synced prefix plus any
    /// still-buffered appends, like an OS page cache read).
    fn read_wal(&self) -> Result<Vec<u8>, DurableError>;
    /// Stage one append. Staged data survives a clean reopen but not a
    /// crash; only [`Store::sync_wal`] makes it crash-durable.
    fn append_wal(&mut self, frame: &[u8]) -> Result<(), DurableError>;
    /// Durability barrier for every staged append.
    fn sync_wal(&mut self) -> Result<(), DurableError>;
    /// Discard the WAL contents (after a successful snapshot).
    fn truncate_wal(&mut self) -> Result<(), DurableError>;
    /// The current snapshot, if one has been published.
    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, DurableError>;
    /// Atomically publish a snapshot (write-temp, sync, rename).
    fn write_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError>;
}

#[derive(Debug, Default)]
struct SimInner {
    synced_wal: Vec<u8>,
    /// Appends staged since the last sync, in order.
    pending: Vec<Vec<u8>>,
    snapshot: Option<Vec<u8>>,
}

/// In-memory simulated device. Clones share the same underlying state, so
/// a harness can keep a handle, let a [`crate::DurableCatalog`] own
/// another, and invoke [`SimStore::crash`] after the catalog handle is
/// dropped mid-fault.
#[derive(Debug, Clone, Default)]
pub struct SimStore {
    inner: Arc<Mutex<SimInner>>,
}

impl SimStore {
    pub fn new() -> Self {
        SimStore::default()
    }

    fn with<T>(&self, f: impl FnOnce(&mut SimInner) -> T) -> T {
        let mut guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut guard)
    }

    /// Simulate power loss: a seeded-random prefix of the staged appends
    /// reaches the device in order; the first lost append may land torn
    /// (partial prefix) and the torn bytes may take a bit flip. Everything
    /// after is dropped. Synced data is never touched.
    pub fn crash(&self, seed: u64) {
        let mut rng = TestRng::new(seed ^ 0xD15C_0DE5);
        self.with(|s| {
            let pending = std::mem::take(&mut s.pending);
            if pending.is_empty() {
                return;
            }
            let survive = rng.range_usize(0, pending.len() + 1);
            for (i, chunk) in pending.into_iter().enumerate() {
                if i < survive {
                    s.synced_wal.extend_from_slice(&chunk);
                } else {
                    // First lost append may be torn; the rest never hit
                    // the device (appends are ordered).
                    let cut = rng.range_usize(0, chunk.len() + 1);
                    let mut torn = chunk[..cut].to_vec();
                    if !torn.is_empty() && rng.chance(0.25) {
                        let at = rng.range_usize(0, torn.len());
                        torn[at] ^= 1 << rng.range_usize(0, 8);
                    }
                    s.synced_wal.extend_from_slice(&torn);
                    break;
                }
            }
        });
    }

    /// Total WAL bytes a reader would currently observe.
    pub fn wal_len(&self) -> usize {
        self.with(|s| s.synced_wal.len() + s.pending.iter().map(Vec::len).sum::<usize>())
    }

    /// Are any appends staged but not yet synced?
    pub fn has_pending(&self) -> bool {
        self.with(|s| !s.pending.is_empty())
    }

    /// Flip bits of one synced WAL byte (negative-probe corruption).
    pub fn corrupt_wal_byte(&self, offset: usize, xor_mask: u8) {
        self.with(|s| {
            if let Some(b) = s.synced_wal.get_mut(offset) {
                *b ^= xor_mask;
            }
        });
    }

    /// Truncate the synced WAL to `len` bytes (torn-tail construction).
    pub fn truncate_wal_to(&self, len: usize) {
        self.with(|s| s.synced_wal.truncate(len));
    }

    pub fn has_snapshot(&self) -> bool {
        self.with(|s| s.snapshot.is_some())
    }

    /// Flip bits of one snapshot byte (negative-probe corruption).
    pub fn corrupt_snapshot_byte(&self, offset: usize, xor_mask: u8) {
        self.with(|s| {
            if let Some(snap) = s.snapshot.as_mut() {
                if let Some(b) = snap.get_mut(offset) {
                    *b ^= xor_mask;
                }
            }
        });
    }
}

impl Store for SimStore {
    fn read_wal(&self) -> Result<Vec<u8>, DurableError> {
        Ok(self.with(|s| {
            let mut out = s.synced_wal.clone();
            for p in &s.pending {
                out.extend_from_slice(p);
            }
            out
        }))
    }

    fn append_wal(&mut self, frame: &[u8]) -> Result<(), DurableError> {
        self.with(|s| s.pending.push(frame.to_vec()));
        Ok(())
    }

    fn sync_wal(&mut self) -> Result<(), DurableError> {
        self.with(|s| {
            let pending = std::mem::take(&mut s.pending);
            for p in pending {
                s.synced_wal.extend_from_slice(&p);
            }
        });
        Ok(())
    }

    fn truncate_wal(&mut self) -> Result<(), DurableError> {
        self.with(|s| {
            s.synced_wal.clear();
            s.pending.clear();
        });
        Ok(())
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, DurableError> {
        Ok(self.with(|s| s.snapshot.clone()))
    }

    fn write_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
        self.with(|s| s.snapshot = Some(bytes.to_vec()));
        Ok(())
    }
}

/// Filesystem-backed store: `<dir>/wal` and `<dir>/snapshot`, with the
/// snapshot published via `snapshot-tmp` + rename. Files are opened per
/// operation — catalog mutation volume is low and this keeps the handle
/// trivially cloneable for the drain-flush hook.
#[derive(Debug, Clone)]
pub struct FileStore {
    dir: PathBuf,
}

fn io_err(e: std::io::Error) -> DurableError {
    DurableError::Io(e.to_string())
}

impl FileStore {
    /// Open (creating if needed) a data directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        Ok(FileStore { dir })
    }

    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("wal")
    }

    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot")
    }

    /// Does the directory hold any durable state to recover?
    pub fn has_state(&self) -> bool {
        self.wal_path().exists() || self.snapshot_path().exists()
    }
}

impl Store for FileStore {
    fn read_wal(&self) -> Result<Vec<u8>, DurableError> {
        match std::fs::read(self.wal_path()) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn append_wal(&mut self, frame: &[u8]) -> Result<(), DurableError> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.wal_path())
            .map_err(io_err)?;
        f.write_all(frame).map_err(io_err)
    }

    fn sync_wal(&mut self) -> Result<(), DurableError> {
        match std::fs::File::open(self.wal_path()) {
            Ok(f) => f.sync_all().map_err(io_err),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn truncate_wal(&mut self) -> Result<(), DurableError> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.wal_path())
            .map_err(io_err)?;
        f.sync_all().map_err(io_err)
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, DurableError> {
        match std::fs::read(self.snapshot_path()) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(e)),
        }
    }

    fn write_snapshot(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
        let tmp = self.dir.join("snapshot-tmp");
        std::fs::write(&tmp, bytes).map_err(io_err)?;
        std::fs::File::open(&tmp)
            .and_then(|f| f.sync_all())
            .map_err(io_err)?;
        std::fs::rename(&tmp, self.snapshot_path()).map_err(io_err)?;
        // Persist the rename itself; directory sync failures are not
        // fatal on filesystems that do not support opening directories.
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_sync_makes_pending_durable() {
        let mut s = SimStore::new();
        s.append_wal(b"abc").unwrap();
        assert!(s.has_pending());
        assert_eq!(s.read_wal().unwrap(), b"abc");
        s.sync_wal().unwrap();
        assert!(!s.has_pending());
        s.crash(1);
        assert_eq!(s.read_wal().unwrap(), b"abc");
    }

    #[test]
    fn sim_crash_never_touches_synced_prefix() {
        for seed in 0..64u64 {
            let mut s = SimStore::new();
            s.append_wal(b"durable!").unwrap();
            s.sync_wal().unwrap();
            s.append_wal(b"staged-1").unwrap();
            s.append_wal(b"staged-2").unwrap();
            s.crash(seed);
            let wal = s.read_wal().unwrap();
            assert!(wal.starts_with(b"durable!"), "seed {seed}: {wal:?}");
            assert!(wal.len() <= b"durable!staged-1staged-2".len());
            assert!(!s.has_pending());
        }
    }

    #[test]
    fn sim_crash_tears_some_seed() {
        // At least one seed in a small sweep must produce a strict-prefix
        // torn append; otherwise the fault model is vacuous.
        let torn = (0..64u64).any(|seed| {
            let mut s = SimStore::new();
            s.append_wal(&[7u8; 64]).unwrap();
            s.crash(seed);
            let n = s.read_wal().unwrap().len();
            n > 0 && n < 64
        });
        assert!(torn);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cse-durable-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = FileStore::open(&dir).unwrap();
        assert!(!s.has_state());
        assert_eq!(s.read_wal().unwrap(), Vec::<u8>::new());
        s.append_wal(b"one").unwrap();
        s.append_wal(b"two").unwrap();
        s.sync_wal().unwrap();
        assert_eq!(s.read_wal().unwrap(), b"onetwo");
        assert!(s.read_snapshot().unwrap().is_none());
        s.write_snapshot(b"snap").unwrap();
        assert_eq!(s.read_snapshot().unwrap().as_deref(), Some(&b"snap"[..]));
        s.truncate_wal().unwrap();
        assert_eq!(s.read_wal().unwrap(), Vec::<u8>::new());
        assert!(s.has_state());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
