//! Catalog snapshots: a checksummed, LSN-stamped image of the whole
//! catalog, encoded as the compacted mutation sequence that rebuilds it.
//!
//! Layout (little-endian):
//!
//! ```text
//! | magic: u32 | version: u32 | lsn: u64 | payload_len: u32 | crc: u32 |
//! | payload: count: u32, then `count` length-prefixed mutations |
//! ```
//!
//! The payload is literally a list of [`CatalogMutation`]s — register
//! every table (sorted by name for deterministic bytes), rebuild every
//! index, re-register every view — replayed through the same
//! [`Catalog::apply_mutation`] path the WAL uses. A snapshot is just a
//! log with the history compacted away.

use crate::crc::crc32;
use crate::{codec, DurableError};
use cse_storage::{Catalog, CatalogMutation};

pub const SNAP_MAGIC: u32 = 0x4353_4E50; // "CSNP"
pub const SNAP_VERSION: u32 = 1;

/// The mutation sequence that rebuilds `catalog` from empty.
pub fn catalog_as_mutations(catalog: &Catalog) -> Vec<CatalogMutation> {
    let mut names: Vec<String> = catalog.table_names().map(str::to_string).collect();
    names.sort();
    let mut out = Vec::new();
    for name in &names {
        let Ok(entry) = catalog.get(name) else {
            continue;
        };
        out.push(CatalogMutation::RegisterTable {
            table: entry.table.as_ref().clone(),
        });
        for idx in &entry.btree_indexes {
            out.push(CatalogMutation::CreateBtreeIndex {
                table: name.clone(),
                column: entry.table.schema().column(idx.column).name.clone(),
            });
        }
        for idx in &entry.hash_indexes {
            out.push(CatalogMutation::CreateHashIndex {
                table: name.clone(),
                column: entry.table.schema().column(idx.column).name.clone(),
            });
        }
    }
    let mut views: Vec<_> = catalog.views().collect();
    views.sort_by(|a, b| a.name.cmp(&b.name));
    for v in views {
        out.push(CatalogMutation::RegisterView {
            name: v.name.clone(),
            definition_sql: v.definition_sql.clone(),
        });
    }
    out
}

/// Encode a snapshot of `catalog` covering every mutation up to `lsn`.
pub fn encode_snapshot(lsn: u64, catalog: &Catalog) -> Vec<u8> {
    let mutations = catalog_as_mutations(catalog);
    let mut payload = Vec::new();
    payload.extend_from_slice(&(mutations.len() as u32).to_le_bytes());
    for m in &mutations {
        let enc = codec::encode_mutation(m);
        payload.extend_from_slice(&(enc.len() as u32).to_le_bytes());
        payload.extend_from_slice(&enc);
    }
    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn u32_at(b: &[u8], at: usize) -> Option<u32> {
    b.get(at..at + 4)
        .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Decode and rebuild a snapshot. Any structural or checksum failure is
/// [`DurableError::CorruptSnapshot`]: a snapshot is published atomically,
/// so unlike the WAL there is no benign torn shape to tolerate.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, Catalog), DurableError> {
    let corrupt = || DurableError::CorruptSnapshot;
    if bytes.len() < 24 {
        return Err(corrupt());
    }
    if u32_at(bytes, 0) != Some(SNAP_MAGIC) || u32_at(bytes, 4) != Some(SNAP_VERSION) {
        return Err(corrupt());
    }
    let mut lsn_bytes = [0u8; 8];
    lsn_bytes.copy_from_slice(&bytes[8..16]);
    let lsn = u64::from_le_bytes(lsn_bytes);
    let payload_len = u32_at(bytes, 16).ok_or_else(corrupt)? as usize;
    let stored_crc = u32_at(bytes, 20).ok_or_else(corrupt)?;
    let payload = bytes.get(24..).ok_or_else(corrupt)?;
    if payload.len() != payload_len || crc32(payload) != stored_crc {
        return Err(corrupt());
    }
    let count = u32_at(payload, 0).ok_or_else(corrupt)? as usize;
    let mut catalog = Catalog::new();
    let mut pos = 4usize;
    for _ in 0..count {
        let len = u32_at(payload, pos).ok_or_else(corrupt)? as usize;
        pos += 4;
        let enc = payload.get(pos..pos + len).ok_or_else(corrupt)?;
        pos += len;
        let m = codec::decode_mutation(enc).map_err(|_| corrupt())?;
        catalog.apply_mutation(&m).map_err(|_| corrupt())?;
    }
    if pos != payload.len() {
        return Err(corrupt());
    }
    Ok((lsn, catalog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_storage::schema::Schema;
    use cse_storage::table::{row, Table};
    use cse_storage::value::{DataType, Value};
    use cse_storage::MaterializedView;

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)]);
        let mut t = Table::new("orders", schema.clone());
        for i in 0..10 {
            t.push(row(vec![Value::Int(i), Value::str(format!("r{i}"))]))
                .unwrap();
        }
        c.register_table(t).unwrap();
        c.create_btree_index("orders", "k").unwrap();
        c.create_hash_index("orders", "s").unwrap();
        let mut v = Table::new("v_sum", Schema::from_pairs(&[("total", DataType::Int)]));
        v.push(row(vec![Value::Int(45)])).unwrap();
        c.register_table(v).unwrap();
        c.register_view(MaterializedView {
            name: "v_sum".into(),
            definition_sql: "select sum(k) as total from orders".into(),
        });
        c
    }

    #[test]
    fn snapshot_roundtrips_catalog() {
        let c = sample_catalog();
        let bytes = encode_snapshot(17, &c);
        let (lsn, rebuilt) = decode_snapshot(&bytes).unwrap();
        assert_eq!(lsn, 17);
        assert!(crate::catalogs_equivalent(&c, &rebuilt).is_ok());
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let c = sample_catalog();
        assert_eq!(encode_snapshot(5, &c), encode_snapshot(5, &c));
    }

    #[test]
    fn corrupted_snapshot_is_detected() {
        let c = sample_catalog();
        let mut bytes = encode_snapshot(3, &c);
        let n = bytes.len();
        bytes[n / 2] ^= 0x20;
        let err = decode_snapshot(&bytes).unwrap_err();
        assert_eq!(err.code(), "WAL_CORRUPT_SNAPSHOT");
        assert!(decode_snapshot(&bytes[..10]).is_err());
        assert!(decode_snapshot(b"not a snapshot at all....").is_err());
    }
}
