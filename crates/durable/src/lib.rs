//! cse-durable: crash-safe durability for the catalog.
//!
//! A checksummed, record-framed write-ahead log of [`CatalogMutation`]s
//! plus periodic snapshots, layered over a [`Store`] abstraction with two
//! implementations: [`FileStore`] (real files, atomic snapshot publish)
//! and [`SimStore`] (an in-memory block device whose [`SimStore::crash`]
//! models torn writes and lost unsynced appends deterministically).
//!
//! The durability contract:
//!
//! - a mutation acknowledged past the fsync barrier survives any crash;
//! - a crash mid-append leaves at worst a torn tail, which recovery
//!   tolerates by keeping the durable prefix (`WAL_TORN_TAIL`);
//! - corruption *inside* the durable prefix is never papered over — it is
//!   a hard error with a stable reason code, because replaying past it
//!   would silently drop acknowledged data;
//! - a recovered catalog must pass the `cse-verify` catalog invariant
//!   pass before serving resumes.
//!
//! Fault injection reuses the `cse-govern` failpoint registry (`CSE_FAIL`
//! grammar) at four sites: `wal.append`, `wal.fsync`, `snapshot.write`,
//! and `recover.replay`.
//!
//! [`CatalogMutation`]: cse_storage::CatalogMutation

use std::fmt;

pub mod codec;
pub mod crc;
pub mod durable;
pub mod recovery;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use durable::{DurableCatalog, DurableOptions};
pub use recovery::{catalogs_equivalent, recover, RecoveryInfo};
pub use store::{FileStore, SimStore, Store};
pub use wal::{scan_wal, WalScan};

/// How a scanned WAL ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The log ends exactly on a frame boundary.
    Clean,
    /// The log ends in an incomplete or checksum-failing final frame —
    /// the expected residue of a crash mid-append. The durable prefix is
    /// intact; `lost_bytes` of unacknowledged tail were discarded.
    TornTail { lost_bytes: u64 },
}

impl TailStatus {
    /// Stable reason code for operator output and log-grepping.
    pub fn code(&self) -> &'static str {
        match self {
            TailStatus::Clean => "WAL_CLEAN",
            TailStatus::TornTail { .. } => "WAL_TORN_TAIL",
        }
    }
}

/// Everything that can go wrong in the durability layer. Each variant
/// maps to a stable reason code via [`DurableError::code`].
#[derive(Debug)]
pub enum DurableError {
    /// A mutation payload failed to decode.
    Codec { what: &'static str },
    /// The underlying store failed (real I/O error from [`FileStore`]).
    Io(String),
    /// A checksum-failing or out-of-order frame *inside* the durable
    /// prefix (bytes follow it). Replay stops: continuing would silently
    /// drop acknowledged records.
    CorruptFrame { at: u64 },
    /// The snapshot failed its magic/version/checksum/structure checks.
    CorruptSnapshot,
    /// A deterministic fault injected by the failpoint registry.
    Injected { site: &'static str },
    /// A journaled mutation no longer applies. The WAL only records
    /// mutations that succeeded live, so this means corruption that the
    /// checksum happened not to catch — still a hard error.
    ReplayApply {
        lsn: u64,
        kind: &'static str,
        detail: String,
    },
    /// The recovered catalog failed the `cse-verify` invariant pass.
    VerifyFailed { errors: usize },
    /// A live mutation was rejected by the catalog (duplicate table,
    /// unknown column, …) before anything was journaled. The handle is
    /// NOT poisoned by this variant.
    Rejected { kind: &'static str, detail: String },
}

impl DurableError {
    /// Stable reason code (all `WAL_`-prefixed; part of the audited
    /// contract vocabulary).
    pub fn code(&self) -> &'static str {
        match self {
            DurableError::Codec { .. } => "WAL_CODEC",
            DurableError::Io(_) => "WAL_IO",
            DurableError::CorruptFrame { .. } => "WAL_CORRUPT_FRAME",
            DurableError::CorruptSnapshot => "WAL_CORRUPT_SNAPSHOT",
            DurableError::Injected { site } => match *site {
                cse_govern::sites::WAL_FSYNC => "WAL_FSYNC_FAULT",
                cse_govern::sites::SNAPSHOT_WRITE => "WAL_SNAPSHOT_FAULT",
                cse_govern::sites::RECOVER_REPLAY => "WAL_REPLAY_FAULT",
                _ => "WAL_APPEND_FAULT",
            },
            DurableError::ReplayApply { .. } => "WAL_REPLAY_APPLY",
            DurableError::VerifyFailed { .. } => "WAL_VERIFY_FAILED",
            DurableError::Rejected { .. } => "WAL_REJECTED",
        }
    }
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Codec { what } => {
                write!(f, "[{}] undecodable record: {what}", self.code())
            }
            DurableError::Io(msg) => write!(f, "[{}] storage i/o failed: {msg}", self.code()),
            DurableError::CorruptFrame { at } => write!(
                f,
                "[{}] corrupt WAL frame at byte {at} with valid data after it",
                self.code()
            ),
            DurableError::CorruptSnapshot => {
                write!(f, "[{}] snapshot failed integrity checks", self.code())
            }
            DurableError::Injected { site } => {
                write!(f, "[{}] injected fault at site '{site}'", self.code())
            }
            DurableError::ReplayApply { lsn, kind, detail } => write!(
                f,
                "[{}] journaled {kind} at lsn {lsn} no longer applies: {detail}",
                self.code()
            ),
            DurableError::VerifyFailed { errors } => write!(
                f,
                "[{}] recovered catalog failed invariant verification with {errors} error(s)",
                self.code()
            ),
            DurableError::Rejected { kind, detail } => {
                write!(f, "[{}] {kind} rejected by catalog: {detail}", self.code())
            }
        }
    }
}

impl std::error::Error for DurableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_prefixed() {
        let samples = [
            DurableError::Codec { what: "tag" },
            DurableError::Io("disk".into()),
            DurableError::CorruptFrame { at: 3 },
            DurableError::CorruptSnapshot,
            DurableError::Injected {
                site: cse_govern::sites::WAL_APPEND,
            },
            DurableError::Injected {
                site: cse_govern::sites::WAL_FSYNC,
            },
            DurableError::Injected {
                site: cse_govern::sites::SNAPSHOT_WRITE,
            },
            DurableError::Injected {
                site: cse_govern::sites::RECOVER_REPLAY,
            },
            DurableError::ReplayApply {
                lsn: 1,
                kind: "drop_table",
                detail: "missing".into(),
            },
            DurableError::VerifyFailed { errors: 2 },
            DurableError::Rejected {
                kind: "register_table",
                detail: "duplicate".into(),
            },
        ];
        for err in &samples {
            assert!(err.code().starts_with("WAL_"), "{err}");
            // Display always leads with the bracketed code so operators
            // can grep stderr for it.
            assert!(err.to_string().contains(err.code()), "{err}");
        }
        assert_eq!(TailStatus::Clean.code(), "WAL_CLEAN");
        assert_eq!(
            TailStatus::TornTail { lost_bytes: 1 }.code(),
            "WAL_TORN_TAIL"
        );
    }
}
