//! [`DurableCatalog`]: the live handle tying a [`Catalog`] to its WAL and
//! snapshot on a [`Store`].
//!
//! Commit protocol per mutation: apply in memory, append one checksummed
//! WAL frame, then group-commit — the fsync barrier runs only every
//! `group_commit` appends (or on an explicit [`DurableCatalog::flush`],
//! which `Server::drain` triggers). A mutation is *durable* once the
//! barrier after it has run; the crash-restart harness asserts exactly
//! that boundary.
//!
//! Every `snapshot_every` records the catalog is snapshotted and the WAL
//! truncated, bounding recovery time by snapshot freshness instead of
//! total history.
//!
//! After any `Err` the handle must be considered poisoned — the in-memory
//! catalog may be ahead of the journal. Discard it and reopen via
//! [`DurableCatalog::open`]; that is the crash the error models.

use crate::recovery::{recover, RecoveryInfo};
use crate::store::Store;
use crate::{codec, snapshot, wal, DurableError};
use cse_govern::{sites, FailpointRegistry};
use cse_storage::{Catalog, CatalogMutation};

/// Tuning for the commit and snapshot cadence.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Fsync after this many appends (1 = sync every commit).
    pub group_commit: usize,
    /// Snapshot + truncate after this many records (0 = never).
    pub snapshot_every: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            group_commit: 8,
            snapshot_every: 256,
        }
    }
}

/// A catalog whose mutations are journaled to a write-ahead log.
#[derive(Debug)]
pub struct DurableCatalog<S: Store> {
    store: S,
    registry: FailpointRegistry,
    catalog: Catalog,
    opts: DurableOptions,
    /// LSN the next record will carry (last applied + 1).
    next_lsn: u64,
    snapshot_lsn: u64,
    unsynced: usize,
    since_snapshot: u64,
}

impl<S: Store> DurableCatalog<S> {
    /// Open a store, recovering whatever durable state it holds (an empty
    /// store recovers to an empty catalog).
    pub fn open(
        store: S,
        opts: DurableOptions,
        registry: FailpointRegistry,
    ) -> Result<(Self, RecoveryInfo), DurableError> {
        let (catalog, info) = recover(&store, &registry)?;
        let this = DurableCatalog {
            store,
            registry,
            catalog,
            opts,
            next_lsn: info.last_lsn + 1,
            snapshot_lsn: info.snapshot_lsn,
            unsynced: 0,
            since_snapshot: 0,
        };
        Ok((this, info))
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// LSN of the most recently applied mutation (0 = none).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    pub fn snapshot_lsn(&self) -> u64 {
        self.snapshot_lsn
    }

    /// Appends staged since the last durability barrier.
    pub fn unsynced(&self) -> usize {
        self.unsynced
    }

    /// Apply a mutation and journal it. Storage-level rejections
    /// (duplicate table, unknown column, …) leave both the catalog and
    /// the journal untouched; durability faults poison the handle (see
    /// module docs).
    pub fn apply(&mut self, m: &CatalogMutation) -> Result<(), DurableError> {
        self.catalog
            .apply_mutation(m)
            .map_err(|err| DurableError::Rejected {
                kind: m.kind(),
                detail: err.to_string(),
            })?;
        if self.registry.should_fail(sites::WAL_APPEND) {
            return Err(DurableError::Injected {
                site: sites::WAL_APPEND,
            });
        }
        let frame = wal::encode_frame(self.next_lsn, &codec::encode_mutation(m));
        self.store.append_wal(&frame)?;
        self.next_lsn += 1;
        self.unsynced += 1;
        self.since_snapshot += 1;
        if self.unsynced >= self.opts.group_commit.max(1) {
            self.flush()?;
        }
        if self.opts.snapshot_every > 0 && self.since_snapshot >= self.opts.snapshot_every {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Durability barrier: fsync every staged append. No-op when nothing
    /// is staged.
    pub fn flush(&mut self) -> Result<(), DurableError> {
        if self.unsynced == 0 {
            return Ok(());
        }
        if self.registry.should_fail(sites::WAL_FSYNC) {
            return Err(DurableError::Injected {
                site: sites::WAL_FSYNC,
            });
        }
        self.store.sync_wal()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Publish a snapshot covering every applied mutation, then truncate
    /// the WAL. Syncs first so the snapshot never runs ahead of the log.
    pub fn snapshot(&mut self) -> Result<(), DurableError> {
        self.flush()?;
        if self.registry.should_fail(sites::SNAPSHOT_WRITE) {
            return Err(DurableError::Injected {
                site: sites::SNAPSHOT_WRITE,
            });
        }
        let lsn = self.last_lsn();
        let bytes = snapshot::encode_snapshot(lsn, &self.catalog);
        self.store.write_snapshot(&bytes)?;
        self.snapshot_lsn = lsn;
        self.store.truncate_wal()?;
        self.since_snapshot = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::catalogs_equivalent;
    use crate::store::SimStore;
    use crate::TailStatus;
    use cse_govern::FailSpec;
    use cse_storage::schema::Schema;
    use cse_storage::table::{row, Table};
    use cse_storage::value::{DataType, Value};

    fn reg_table(name: &str, vals: &[i64]) -> CatalogMutation {
        let mut t = Table::new(name, Schema::from_pairs(&[("a", DataType::Int)]));
        for v in vals {
            t.push(row(vec![Value::Int(*v)])).unwrap();
        }
        CatalogMutation::RegisterTable { table: t }
    }

    fn open_sim(store: &SimStore, opts: DurableOptions) -> DurableCatalog<SimStore> {
        DurableCatalog::open(store.clone(), opts, FailpointRegistry::disabled())
            .unwrap()
            .0
    }

    #[test]
    fn flushed_mutations_survive_crash_and_reopen() {
        let store = SimStore::new();
        let mut d = open_sim(
            &store,
            DurableOptions {
                group_commit: 1,
                snapshot_every: 0,
            },
        );
        d.apply(&reg_table("t1", &[1, 2, 3])).unwrap();
        d.apply(&reg_table("t2", &[4])).unwrap();
        let live = d.catalog().clone();
        drop(d);
        store.crash(9);
        let (d2, info) = DurableCatalog::open(
            store.clone(),
            DurableOptions::default(),
            FailpointRegistry::disabled(),
        )
        .unwrap();
        assert_eq!(info.replayed, 2);
        catalogs_equivalent(&live, d2.catalog()).unwrap();
    }

    #[test]
    fn group_commit_defers_the_barrier() {
        let store = SimStore::new();
        let mut d = open_sim(
            &store,
            DurableOptions {
                group_commit: 3,
                snapshot_every: 0,
            },
        );
        d.apply(&reg_table("t1", &[1])).unwrap();
        d.apply(&reg_table("t2", &[2])).unwrap();
        assert_eq!(d.unsynced(), 2);
        assert!(store.has_pending());
        d.apply(&reg_table("t3", &[3])).unwrap();
        assert_eq!(d.unsynced(), 0);
        assert!(!store.has_pending());
        d.apply(&reg_table("t4", &[4])).unwrap();
        d.flush().unwrap();
        assert!(!store.has_pending());
    }

    #[test]
    fn snapshot_truncates_and_reopen_skips_replay() {
        let store = SimStore::new();
        let mut d = open_sim(
            &store,
            DurableOptions {
                group_commit: 1,
                snapshot_every: 0,
            },
        );
        for i in 0..5 {
            d.apply(&reg_table(&format!("t{i}"), &[i])).unwrap();
        }
        d.snapshot().unwrap();
        assert_eq!(store.wal_len(), 0);
        d.apply(&reg_table("late", &[99])).unwrap();
        let live = d.catalog().clone();
        drop(d);
        let (d2, info) = DurableCatalog::open(
            store.clone(),
            DurableOptions::default(),
            FailpointRegistry::disabled(),
        )
        .unwrap();
        assert_eq!(info.snapshot_lsn, 5);
        assert_eq!(info.replayed, 1);
        assert_eq!(info.last_lsn, 6);
        catalogs_equivalent(&live, d2.catalog()).unwrap();
    }

    #[test]
    fn automatic_snapshot_cadence() {
        let store = SimStore::new();
        let mut d = open_sim(
            &store,
            DurableOptions {
                group_commit: 1,
                snapshot_every: 4,
            },
        );
        for i in 0..4 {
            d.apply(&reg_table(&format!("t{i}"), &[i])).unwrap();
        }
        assert!(store.has_snapshot());
        assert_eq!(store.wal_len(), 0);
        assert_eq!(d.snapshot_lsn(), 4);
    }

    #[test]
    fn rejected_mutation_is_not_journaled() {
        let store = SimStore::new();
        let mut d = open_sim(
            &store,
            DurableOptions {
                group_commit: 1,
                snapshot_every: 0,
            },
        );
        d.apply(&reg_table("t1", &[1])).unwrap();
        let wal_before = store.wal_len();
        let err = d.apply(&reg_table("t1", &[2])).unwrap_err();
        assert_eq!(err.code(), "WAL_REJECTED");
        assert_eq!(store.wal_len(), wal_before);
        assert_eq!(d.last_lsn(), 1);
    }

    #[test]
    fn injected_append_fault_poisons_but_recovers() {
        let store = SimStore::new();
        let mut reg = FailpointRegistry::disabled();
        // Arm before cloning: a clone shares the site map only if it
        // already exists.
        reg.arm(FailSpec {
            site: sites::WAL_APPEND.to_string(),
            probability: 0.0,
            seed: 7,
        });
        let mut d = DurableCatalog::open(
            store.clone(),
            DurableOptions {
                group_commit: 1,
                snapshot_every: 0,
            },
            reg.clone(),
        )
        .unwrap()
        .0;
        d.apply(&reg_table("t1", &[1])).unwrap();
        reg.rearm(FailSpec {
            site: sites::WAL_APPEND.to_string(),
            probability: 1.0,
            seed: 7,
        });
        let err = d.apply(&reg_table("t2", &[2])).unwrap_err();
        assert_eq!(err.code(), "WAL_APPEND_FAULT");
        drop(d);
        store.crash(7);
        reg.disarm(sites::WAL_APPEND);
        let (d2, info) =
            DurableCatalog::open(store.clone(), DurableOptions::default(), reg.clone()).unwrap();
        // t2 was never acknowledged; the durable prefix holds exactly t1.
        assert!(d2.catalog().contains("t1"));
        assert!(!d2.catalog().contains("t2"));
        assert_eq!(info.tail, TailStatus::Clean);
    }
}
