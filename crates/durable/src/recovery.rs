//! Crash recovery: snapshot load + WAL suffix replay + invariant check.
//!
//! The protocol mirrors ARIES-style redo restricted to catalog mutations:
//! load the newest published snapshot (if any), replay every WAL record
//! with an LSN beyond it through [`Catalog::apply_mutation`], tolerate a
//! torn tail, and refuse to serve a catalog that fails the `cse-verify`
//! catalog invariant pass.

use crate::store::Store;
use crate::{codec, snapshot, wal, DurableError, TailStatus};
use cse_govern::{sites, FailpointRegistry};
use cse_storage::{Catalog, CatalogEntry};

/// What recovery found and did; surfaced to operators (qserve prints it)
/// and asserted on by the crash-restart harness.
#[derive(Debug)]
pub struct RecoveryInfo {
    /// LSN the loaded snapshot covers (0 = no snapshot).
    pub snapshot_lsn: u64,
    /// WAL records replayed (LSN beyond the snapshot).
    pub replayed: usize,
    /// WAL records skipped because the snapshot already covers them
    /// (crash landed between snapshot publish and log truncation).
    pub skipped: usize,
    /// Highest LSN the recovered catalog reflects.
    pub last_lsn: u64,
    /// How the log ended ([`TailStatus::code`] is the stable reason code).
    pub tail: TailStatus,
    /// Diagnostics from the `cse-verify` catalog invariant pass (clean
    /// when recovery returns `Ok`).
    pub verify: cse_verify::Report,
}

/// Rebuild the catalog from a store's snapshot + WAL.
///
/// A torn tail is tolerated (the durable prefix wins, reported via
/// [`RecoveryInfo::tail`]); mid-log corruption, a corrupt snapshot, an
/// undecodable record, a record that fails to apply, or a catalog that
/// fails invariant verification are all hard errors — serving must not
/// resume on silently lossy state.
pub fn recover<S: Store>(
    store: &S,
    registry: &FailpointRegistry,
) -> Result<(Catalog, RecoveryInfo), DurableError> {
    let (snapshot_lsn, mut catalog) = match store.read_snapshot()? {
        Some(bytes) => snapshot::decode_snapshot(&bytes)?,
        None => (0, Catalog::new()),
    };
    let image = store.read_wal()?;
    let scan = wal::scan_wal(&image)?;
    let mut replayed = 0usize;
    let mut skipped = 0usize;
    let mut last_lsn = snapshot_lsn;
    for (lsn, payload) in &scan.records {
        if *lsn <= snapshot_lsn {
            skipped += 1;
            continue;
        }
        if registry.should_fail(sites::RECOVER_REPLAY) {
            return Err(DurableError::Injected {
                site: sites::RECOVER_REPLAY,
            });
        }
        let m = codec::decode_mutation(payload)?;
        catalog
            .apply_mutation(&m)
            .map_err(|err| DurableError::ReplayApply {
                lsn: *lsn,
                kind: m.kind(),
                detail: err.to_string(),
            })?;
        replayed += 1;
        last_lsn = *lsn;
    }
    let verify = cse_verify::catalog::verify_catalog(&catalog);
    if verify.error_count() > 0 {
        return Err(DurableError::VerifyFailed {
            errors: verify.error_count(),
        });
    }
    Ok((
        catalog,
        RecoveryInfo {
            snapshot_lsn,
            replayed,
            skipped,
            last_lsn,
            tail: scan.tail,
            verify,
        },
    ))
}

fn entry_signature(e: &CatalogEntry) -> (Vec<u8>, usize, Vec<usize>, Vec<usize>) {
    let mut rows: Vec<&cse_storage::Row> = e.table.rows().iter().collect();
    rows.sort_by(|a, b| a.as_ref().cmp(b.as_ref()));
    let mut digest = Vec::new();
    for r in rows {
        for v in r.iter() {
            digest.extend_from_slice(format!("{v};").as_bytes());
        }
        digest.push(b'\n');
    }
    let mut btree: Vec<usize> = e.btree_indexes.iter().map(|i| i.column).collect();
    btree.sort_unstable();
    let mut hash: Vec<usize> = e.hash_indexes.iter().map(|i| i.column).collect();
    hash.sort_unstable();
    (digest, e.stats.row_count as usize, btree, hash)
}

/// Structural equivalence of two catalogs: same tables (schema + row
/// multiset + stats row count + index columns) and same views. Returns a
/// description of the first difference, for test failure messages.
pub fn catalogs_equivalent(a: &Catalog, b: &Catalog) -> Result<(), String> {
    let mut names_a: Vec<&str> = a.table_names().collect();
    let mut names_b: Vec<&str> = b.table_names().collect();
    names_a.sort_unstable();
    names_b.sort_unstable();
    if names_a != names_b {
        return Err(format!("table sets differ: {names_a:?} vs {names_b:?}"));
    }
    for name in names_a {
        let (ea, eb) = (
            a.get(name).map_err(|e| e.to_string())?,
            b.get(name).map_err(|e| e.to_string())?,
        );
        if ea.table.schema().as_ref() != eb.table.schema().as_ref() {
            return Err(format!("schema of '{name}' differs"));
        }
        let (rows_a, count_a, bt_a, h_a) = entry_signature(ea);
        let (rows_b, count_b, bt_b, h_b) = entry_signature(eb);
        if rows_a != rows_b {
            return Err(format!("row contents of '{name}' differ"));
        }
        if count_a != count_b {
            return Err(format!(
                "stats row_count of '{name}' differs: {count_a} vs {count_b}"
            ));
        }
        if bt_a != bt_b || h_a != h_b {
            return Err(format!("index set of '{name}' differs"));
        }
        for (ca, cb) in ea.stats.columns.iter().zip(eb.stats.columns.iter()) {
            if ca.distinct != cb.distinct || ca.null_count != cb.null_count {
                return Err(format!("column stats of '{name}' differ"));
            }
        }
    }
    let mut views_a: Vec<(&str, &str)> = a
        .views()
        .map(|v| (v.name.as_str(), v.definition_sql.as_str()))
        .collect();
    let mut views_b: Vec<(&str, &str)> = b
        .views()
        .map(|v| (v.name.as_str(), v.definition_sql.as_str()))
        .collect();
    views_a.sort_unstable();
    views_b.sort_unstable();
    if views_a != views_b {
        return Err(format!("view sets differ: {views_a:?} vs {views_b:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SimStore;
    use cse_storage::schema::Schema;
    use cse_storage::table::{row, Table};
    use cse_storage::value::{DataType, Value};
    use cse_storage::CatalogMutation;

    fn table_named(name: &str, vals: &[i64]) -> Table {
        let mut t = Table::new(name, Schema::from_pairs(&[("a", DataType::Int)]));
        for v in vals {
            t.push(row(vec![Value::Int(*v)])).unwrap();
        }
        t
    }

    fn append_record(store: &mut SimStore, lsn: u64, m: &CatalogMutation) {
        let frame = wal::encode_frame(lsn, &codec::encode_mutation(m));
        store.append_wal(&frame).unwrap();
        store.sync_wal().unwrap();
    }

    #[test]
    fn replay_from_empty_store() {
        let store = SimStore::new();
        let reg = FailpointRegistry::disabled();
        let (catalog, info) = recover(&store, &reg).unwrap();
        assert_eq!(catalog.table_names().count(), 0);
        assert_eq!(info.last_lsn, 0);
        assert_eq!(info.tail, TailStatus::Clean);
        assert_eq!(info.tail.code(), "WAL_CLEAN");
    }

    #[test]
    fn replay_applies_wal_suffix_after_snapshot() {
        let mut store = SimStore::new();
        let reg = FailpointRegistry::disabled();
        let mut oracle = Catalog::new();
        oracle.register_table(table_named("t1", &[1, 2])).unwrap();
        store
            .write_snapshot(&snapshot::encode_snapshot(1, &oracle))
            .unwrap();
        // A stale record the snapshot already covers (pre-truncation
        // crash) plus a live suffix record.
        append_record(
            &mut store,
            1,
            &CatalogMutation::RegisterTable {
                table: table_named("t1", &[1, 2]),
            },
        );
        let m2 = CatalogMutation::RegisterTable {
            table: table_named("t2", &[7]),
        };
        append_record(&mut store, 2, &m2);
        oracle.apply_mutation(&m2).unwrap();

        let (catalog, info) = recover(&store, &reg).unwrap();
        assert_eq!(info.snapshot_lsn, 1);
        assert_eq!(info.skipped, 1);
        assert_eq!(info.replayed, 1);
        assert_eq!(info.last_lsn, 2);
        catalogs_equivalent(&oracle, &catalog).unwrap();
    }

    #[test]
    fn replay_failpoint_injects() {
        let mut store = SimStore::new();
        append_record(
            &mut store,
            1,
            &CatalogMutation::RegisterTable {
                table: table_named("t1", &[1]),
            },
        );
        let mut reg = FailpointRegistry::disabled();
        reg.arm(cse_govern::FailSpec {
            site: sites::RECOVER_REPLAY.to_string(),
            probability: 1.0,
            seed: 42,
        });
        let err = recover(&store, &reg).unwrap_err();
        assert_eq!(err.code(), "WAL_REPLAY_FAULT");
        // A crash during recovery must itself be recoverable.
        reg.disarm(sites::RECOVER_REPLAY);
        let (catalog, _) = recover(&store, &reg).unwrap();
        assert!(catalog.contains("t1"));
    }

    #[test]
    fn equivalence_notices_differences() {
        let mut a = Catalog::new();
        a.register_table(table_named("t", &[1, 2])).unwrap();
        let mut b = Catalog::new();
        b.register_table(table_named("t", &[1, 3])).unwrap();
        assert!(catalogs_equivalent(&a, &a).is_ok());
        assert!(catalogs_equivalent(&a, &b).is_err());
        let mut c = Catalog::new();
        c.register_table(table_named("t", &[1, 2])).unwrap();
        c.create_hash_index("t", "a").unwrap();
        assert!(catalogs_equivalent(&a, &c).is_err());
    }
}
