//! CRC-32 (IEEE 802.3 polynomial, reflected), hand-rolled because the
//! build environment is offline and the workspace carries no external
//! crates. One 256-entry table, computed at first use.

/// CRC-32/ISO-HDLC of `bytes` (same parameters as zlib's `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    crc ^ 0xFFFF_FFFF
}

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hello durable world".to_vec();
        let before = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(before, crc32(&data));
    }
}
