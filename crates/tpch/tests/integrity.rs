//! Referential-integrity and distribution checks across the generated
//! TPC-H tables — the properties the experiments' cardinality estimates
//! depend on.

use cse_tpch::{generate_table, TpchConfig, TpchTable};
use std::collections::HashSet;

fn cfg() -> TpchConfig {
    TpchConfig {
        scale: 0.002,
        seed: 7,
    }
}

fn key_set(table: TpchTable, col: usize) -> HashSet<i64> {
    generate_table(&cfg(), table)
        .scan()
        .map(|r| r[col].as_i64().unwrap())
        .collect()
}

#[test]
fn orders_reference_existing_customers() {
    let customers = key_set(TpchTable::Customer, 0);
    let orders = generate_table(&cfg(), TpchTable::Orders);
    for r in orders.scan() {
        assert!(customers.contains(&r[1].as_i64().unwrap()));
    }
}

#[test]
fn lineitems_reference_existing_parts_and_suppliers() {
    let parts = key_set(TpchTable::Part, 0);
    let suppliers = key_set(TpchTable::Supplier, 0);
    let lineitem = generate_table(&cfg(), TpchTable::Lineitem);
    for r in lineitem.scan() {
        assert!(
            parts.contains(&r[1].as_i64().unwrap()),
            "dangling l_partkey"
        );
        assert!(
            suppliers.contains(&r[2].as_i64().unwrap()),
            "dangling l_suppkey"
        );
    }
}

#[test]
fn partsupp_references_parts_and_suppliers() {
    let parts = key_set(TpchTable::Part, 0);
    let suppliers = key_set(TpchTable::Supplier, 0);
    let ps = generate_table(&cfg(), TpchTable::PartSupp);
    assert_eq!(ps.row_count(), parts.len() * 4, "4 suppliers per part");
    for r in ps.scan() {
        assert!(parts.contains(&r[0].as_i64().unwrap()));
        assert!(suppliers.contains(&r[1].as_i64().unwrap()));
    }
    // (partkey, suppkey) pairs are unique.
    let pairs: HashSet<(i64, i64)> = ps
        .scan()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    assert_eq!(pairs.len(), ps.row_count());
}

#[test]
fn nations_cover_all_regions() {
    let nation = generate_table(&cfg(), TpchTable::Nation);
    let regions: HashSet<i64> = nation.scan().map(|r| r[2].as_i64().unwrap()).collect();
    assert_eq!(regions.len(), 5);
}

#[test]
fn primary_keys_are_dense_and_unique() {
    for (table, expect) in [
        (TpchTable::Customer, 300usize),
        (TpchTable::Orders, 3000),
        (TpchTable::Part, 400),
        (TpchTable::Supplier, 20),
    ] {
        let t = generate_table(&cfg(), table);
        assert_eq!(t.row_count(), expect, "{}", table.name());
        let keys = key_set(table, 0);
        assert_eq!(keys.len(), expect, "{} keys not unique", table.name());
        assert_eq!(*keys.iter().min().unwrap(), 1);
        assert_eq!(*keys.iter().max().unwrap() as usize, expect);
    }
}

#[test]
fn customer_nationkeys_roughly_uniform() {
    let c = generate_table(&cfg(), TpchTable::Customer);
    let mut counts = [0usize; 25];
    for r in c.scan() {
        counts[r[3].as_i64().unwrap() as usize] += 1;
    }
    let expected = c.row_count() as f64 / 25.0;
    for (nk, n) in counts.iter().enumerate() {
        assert!(
            (*n as f64) < expected * 3.0 + 5.0,
            "nation {nk} over-represented: {n}"
        );
    }
}

#[test]
fn money_columns_within_domain() {
    let o = generate_table(&cfg(), TpchTable::Orders);
    for r in o.scan() {
        let p = r[3].as_f64().unwrap();
        assert!((850.0..=450_000.0).contains(&p));
    }
    let l = generate_table(&cfg(), TpchTable::Lineitem);
    for r in l.scan().take(1000) {
        let disc = r[6].as_f64().unwrap();
        assert!((0.0..=0.10).contains(&disc));
        let tax = r[7].as_f64().unwrap();
        assert!((0.0..=0.08).contains(&tax));
    }
}
