//! Deterministic random number generation for the data generator.
//!
//! A SplitMix64 stream per (table, column-ish purpose) keeps generation
//! reproducible regardless of row generation order, mirroring dbgen's
//! per-column seeds.

/// SplitMix64: tiny, fast, and statistically fine for data generation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent stream for a named purpose.
    pub fn derive(seed: u64, purpose: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in purpose.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        SplitMix64::new(seed ^ h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn float_range(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Pick an element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next_u64() % items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_differs_by_purpose() {
        let mut a = SplitMix64::derive(42, "orders");
        let mut b = SplitMix64::derive(42, "lineitem");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_range_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.int_range(-3, 9);
            assert!((-3..=9).contains(&v));
        }
    }

    #[test]
    fn int_range_covers_extremes() {
        let mut r = SplitMix64::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            match r.int_range(0, 9) {
                0 => seen_lo = true,
                9 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.float_range(1.0, 2.0);
            assert!((1.0..2.0).contains(&v));
        }
    }

    #[test]
    fn float_range_roughly_uniform() {
        let mut r = SplitMix64::new(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.float_range(0.0, 1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
