//! Text pools for string-valued columns.
//!
//! Low-cardinality columns draw from the exact dbgen domains (segments,
//! priorities, ship modes, part types, ...). Free-text comments draw from a
//! pregenerated pool of phrases so that string allocation is shared via
//! `Arc<str>` clones.

use crate::rng::SplitMix64;
use std::sync::Arc;

pub const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

pub const SHIP_MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

pub const SHIP_INSTRUCT: &[&str] = &[
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

pub const RETURN_FLAGS: &[&str] = &["R", "A", "N"];
pub const LINE_STATUS: &[&str] = &["O", "F"];
pub const ORDER_STATUS: &[&str] = &["O", "F", "P"];

pub const TYPE_SYLL_1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPE_SYLL_2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPE_SYLL_3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

pub const CONTAINERS_1: &[&str] = &["SM", "LG", "MED", "JUMBO", "WRAP"];
pub const CONTAINERS_2: &[&str] = &["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

pub const NATIONS: &[(&str, i64)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

const WORDS: &[&str] = &[
    "furious",
    "silent",
    "careful",
    "pending",
    "express",
    "regular",
    "final",
    "special",
    "ironic",
    "bold",
    "quick",
    "even",
    "blithe",
    "daring",
    "dogged",
    "unusual",
    "packages",
    "deposits",
    "accounts",
    "requests",
    "instructions",
    "theodolites",
    "pinto",
    "beans",
    "foxes",
    "ideas",
    "platelets",
    "asymptotes",
    "courts",
    "dolphins",
    "excuses",
];

/// A shared pool of pregenerated comment strings.
#[derive(Debug, Clone)]
pub struct CommentPool {
    pool: Vec<Arc<str>>,
}

impl CommentPool {
    /// Build a pool of `size` comments with lengths ~20-60 characters.
    pub fn new(seed: u64, size: usize) -> Self {
        let mut rng = SplitMix64::derive(seed, "comments");
        let mut pool = Vec::with_capacity(size);
        for _ in 0..size {
            let words = rng.int_range(3, 8) as usize;
            let mut s = String::with_capacity(48);
            for w in 0..words {
                if w > 0 {
                    s.push(' ');
                }
                s.push_str(rng.pick::<&str>(WORDS));
            }
            pool.push(Arc::from(s.as_str()));
        }
        CommentPool { pool }
    }

    pub fn pick(&self, rng: &mut SplitMix64) -> Arc<str> {
        self.pool[(rng.next_u64() % self.pool.len() as u64) as usize].clone()
    }
}

/// dbgen-style synthetic phone number for a nation key.
pub fn phone(rng: &mut SplitMix64, nationkey: i64) -> String {
    format!(
        "{}-{}-{}-{}",
        10 + nationkey,
        rng.int_range(100, 999),
        rng.int_range(100, 999),
        rng.int_range(1000, 9999)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nations_match_tpch() {
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(REGIONS.len(), 5);
        // All region keys in range.
        assert!(NATIONS.iter().all(|(_, r)| (0..5).contains(r)));
    }

    #[test]
    fn comment_pool_is_deterministic() {
        let a = CommentPool::new(1, 16);
        let b = CommentPool::new(1, 16);
        let mut ra = SplitMix64::new(5);
        let mut rb = SplitMix64::new(5);
        for _ in 0..32 {
            assert_eq!(a.pick(&mut ra), b.pick(&mut rb));
        }
    }

    #[test]
    fn phone_shape() {
        let mut r = SplitMix64::new(3);
        let p = phone(&mut r, 7);
        assert!(p.starts_with("17-"));
        assert_eq!(p.split('-').count(), 4);
    }
}
