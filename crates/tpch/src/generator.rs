//! Deterministic TPC-H data generation.
//!
//! The generator reproduces dbgen's value *distributions* (uniform keys,
//! date ranges, 1–7 lineitems per order, 25 nations over 5 regions, ...) so
//! that selectivities — the quantity the paper's experiments depend on —
//! match the real benchmark. Absolute string contents differ.

use crate::rng::SplitMix64;
use crate::schema::TpchTable;
use crate::text::{self, CommentPool};
use cse_storage::{row, Catalog, Row, Table, TableStats, Value};
use std::sync::Arc;

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// Scale factor; SF=1 is the paper's 1 GB database. The experiments here
    /// default to much smaller factors (see `cse-bench`).
    pub scale: f64,
    /// Seed for all value streams.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.01,
            seed: 0x7c5e_2007,
        }
    }
}

impl TpchConfig {
    pub fn new(scale: f64) -> Self {
        TpchConfig {
            scale,
            ..Default::default()
        }
    }

    /// Scaled row count for a table (region/nation are fixed-size).
    pub fn rows(&self, table: TpchTable) -> u64 {
        match table {
            TpchTable::Region | TpchTable::Nation => table.base_rows(),
            _ => ((table.base_rows() as f64 * self.scale).round() as u64).max(1),
        }
    }
}

/// First order date in dbgen (1992-01-01, days since epoch).
pub const START_DATE: i32 = 8035;
/// Last order date in dbgen (1998-08-02).
pub const END_DATE: i32 = 10440;

fn comment_pool(cfg: &TpchConfig) -> CommentPool {
    CommentPool::new(cfg.seed, 512)
}

/// Generate one table.
pub fn generate_table(cfg: &TpchConfig, which: TpchTable) -> Table {
    let pool = comment_pool(cfg);
    match which {
        TpchTable::Region => gen_region(cfg, &pool),
        TpchTable::Nation => gen_nation(cfg, &pool),
        TpchTable::Supplier => gen_supplier(cfg, &pool),
        TpchTable::Customer => gen_customer(cfg, &pool),
        TpchTable::Part => gen_part(cfg, &pool),
        TpchTable::PartSupp => gen_partsupp(cfg, &pool),
        TpchTable::Orders => gen_orders(cfg, &pool),
        TpchTable::Lineitem => gen_lineitem(cfg, &pool),
    }
}

/// Generate all eight tables and register them (with analyzed statistics)
/// in a fresh catalog.
pub fn generate_catalog(cfg: &TpchConfig) -> Catalog {
    let mut catalog = Catalog::new();
    for t in TpchTable::ALL {
        let table = generate_table(cfg, t);
        let stats = Arc::new(TableStats::analyze(&table));
        catalog
            .register_table_with_stats(stats, table)
            .expect("fresh catalog has no duplicates");
    }
    catalog
}

fn gen_region(cfg: &TpchConfig, pool: &CommentPool) -> Table {
    let mut rng = SplitMix64::derive(cfg.seed, "region");
    let mut t = Table::new("region", TpchTable::Region.schema());
    for (k, name) in text::REGIONS.iter().enumerate() {
        t.extend([row(vec![
            Value::Int(k as i64),
            Value::str(name),
            Value::Str(pool.pick(&mut rng)),
        ])]);
    }
    t
}

fn gen_nation(cfg: &TpchConfig, pool: &CommentPool) -> Table {
    let mut rng = SplitMix64::derive(cfg.seed, "nation");
    let mut t = Table::new("nation", TpchTable::Nation.schema());
    for (k, (name, region)) in text::NATIONS.iter().enumerate() {
        t.extend([row(vec![
            Value::Int(k as i64),
            Value::str(name),
            Value::Int(*region),
            Value::Str(pool.pick(&mut rng)),
        ])]);
    }
    t
}

fn gen_supplier(cfg: &TpchConfig, pool: &CommentPool) -> Table {
    let mut rng = SplitMix64::derive(cfg.seed, "supplier");
    let n = cfg.rows(TpchTable::Supplier);
    let mut t = Table::new("supplier", TpchTable::Supplier.schema());
    let mut rows = Vec::with_capacity(n as usize);
    for k in 1..=n as i64 {
        let nation = rng.int_range(0, 24);
        rows.push(row(vec![
            Value::Int(k),
            Value::str(format!("Supplier#{k:09}")),
            Value::Str(pool.pick(&mut rng)),
            Value::Int(nation),
            Value::str(text::phone(&mut rng, nation)),
            Value::Float((rng.float_range(-999.99, 9999.99) * 100.0).round() / 100.0),
            Value::Str(pool.pick(&mut rng)),
        ]));
    }
    t.extend(rows);
    t
}

fn gen_customer(cfg: &TpchConfig, pool: &CommentPool) -> Table {
    let mut rng = SplitMix64::derive(cfg.seed, "customer");
    let n = cfg.rows(TpchTable::Customer);
    let mut t = Table::new("customer", TpchTable::Customer.schema());
    let mut rows = Vec::with_capacity(n as usize);
    for k in 1..=n as i64 {
        let nation = rng.int_range(0, 24);
        rows.push(customer_row(k, nation, &mut rng, pool));
    }
    t.extend(rows);
    t
}

/// Build a single customer row (also used by the view-maintenance
/// experiment to fabricate inserted customers).
pub fn customer_row(key: i64, nation: i64, rng: &mut SplitMix64, pool: &CommentPool) -> Row {
    row(vec![
        Value::Int(key),
        Value::str(format!("Customer#{key:09}")),
        Value::Str(pool.pick(rng)),
        Value::Int(nation),
        Value::str(text::phone(rng, nation)),
        Value::Float((rng.float_range(-999.99, 9999.99) * 100.0).round() / 100.0),
        Value::str(*rng.pick(text::SEGMENTS)),
        Value::Str(pool.pick(rng)),
    ])
}

fn gen_part(cfg: &TpchConfig, pool: &CommentPool) -> Table {
    let mut rng = SplitMix64::derive(cfg.seed, "part");
    let n = cfg.rows(TpchTable::Part);
    let mut t = Table::new("part", TpchTable::Part.schema());
    let mut rows = Vec::with_capacity(n as usize);
    for k in 1..=n as i64 {
        let ptype = format!(
            "{} {} {}",
            rng.pick(text::TYPE_SYLL_1),
            rng.pick(text::TYPE_SYLL_2),
            rng.pick(text::TYPE_SYLL_3)
        );
        let container = format!(
            "{} {}",
            rng.pick(text::CONTAINERS_1),
            rng.pick(text::CONTAINERS_2)
        );
        rows.push(row(vec![
            Value::Int(k),
            Value::str(format!("part {k}")),
            Value::str(format!("Manufacturer#{}", rng.int_range(1, 5))),
            Value::str(format!(
                "Brand#{}{}",
                rng.int_range(1, 5),
                rng.int_range(1, 5)
            )),
            Value::str(ptype),
            Value::Int(rng.int_range(1, 50)),
            Value::str(container),
            Value::Float(
                (90_000.0 + (k % 200_001) as f64 * 0.01 + 100.0 * (k % 1000) as f64 * 0.01).round()
                    / 100.0,
            ),
            Value::Str(pool.pick(&mut rng)),
        ]));
    }
    t.extend(rows);
    t
}

fn gen_partsupp(cfg: &TpchConfig, pool: &CommentPool) -> Table {
    let mut rng = SplitMix64::derive(cfg.seed, "partsupp");
    let parts = cfg.rows(TpchTable::Part) as i64;
    let suppliers = cfg.rows(TpchTable::Supplier) as i64;
    let mut t = Table::new("partsupp", TpchTable::PartSupp.schema());
    // dbgen: 4 suppliers per part.
    let mut rows = Vec::with_capacity((parts * 4) as usize);
    for p in 1..=parts {
        for s in 0..4 {
            let suppkey = 1 + (p + s * (suppliers / 4).max(1)) % suppliers;
            rows.push(row(vec![
                Value::Int(p),
                Value::Int(suppkey),
                Value::Int(rng.int_range(1, 9999)),
                Value::Float((rng.float_range(1.0, 1000.0) * 100.0).round() / 100.0),
                Value::Str(pool.pick(&mut rng)),
            ]));
        }
    }
    t.extend(rows);
    t
}

fn gen_orders(cfg: &TpchConfig, pool: &CommentPool) -> Table {
    let mut rng = SplitMix64::derive(cfg.seed, "orders");
    let n = cfg.rows(TpchTable::Orders);
    let customers = cfg.rows(TpchTable::Customer) as i64;
    let mut t = Table::new("orders", TpchTable::Orders.schema());
    let mut rows = Vec::with_capacity(n as usize);
    for k in 1..=n as i64 {
        let orderdate = rng.int_range(START_DATE as i64, (END_DATE - 151) as i64) as i32;
        rows.push(row(vec![
            Value::Int(k),
            Value::Int(rng.int_range(1, customers)),
            Value::str(*rng.pick(text::ORDER_STATUS)),
            Value::Float((rng.float_range(850.0, 450_000.0) * 100.0).round() / 100.0),
            Value::Date(orderdate),
            Value::str(*rng.pick(text::PRIORITIES)),
            Value::str(format!("Clerk#{:09}", rng.int_range(1, 1000))),
            Value::Int(0),
            Value::Str(pool.pick(&mut rng)),
        ]));
    }
    t.extend(rows);
    t
}

fn gen_lineitem(cfg: &TpchConfig, pool: &CommentPool) -> Table {
    // Lineitems are generated per order so that l_orderkey joins and
    // per-order line counts (1-7) match dbgen. Order dates are regenerated
    // from the same stream as gen_orders to keep l_shipdate > o_orderdate.
    let mut orng = SplitMix64::derive(cfg.seed, "orders");
    let mut rng = SplitMix64::derive(cfg.seed, "lineitem");
    let orders = cfg.rows(TpchTable::Orders);
    let parts = cfg.rows(TpchTable::Part) as i64;
    let suppliers = cfg.rows(TpchTable::Supplier) as i64;
    let customers = cfg.rows(TpchTable::Customer) as i64;
    let mut t = Table::new("lineitem", TpchTable::Lineitem.schema());
    let mut rows = Vec::with_capacity((orders * 4) as usize);
    for ok in 1..=orders as i64 {
        // Mirror gen_orders' stream usage (orderdate is drawn first there)
        // to recover o_orderdate for this order key.
        let orderdate = orng.int_range(START_DATE as i64, (END_DATE - 151) as i64) as i32;
        let _custkey = orng.int_range(1, customers);
        let _status = orng.pick(text::ORDER_STATUS);
        let _total = orng.float_range(850.0, 450_000.0);
        let _prio = orng.pick(text::PRIORITIES);
        let _clerk = orng.int_range(1, 1000);
        let _c = orng.next_u64(); // comment pick in gen_orders

        let lines = rng.int_range(1, 7);
        for ln in 1..=lines {
            let quantity = rng.int_range(1, 50) as f64;
            let price_per_unit = rng.float_range(900.0, 2100.0);
            let extended = (quantity * price_per_unit * 100.0).round() / 100.0;
            let shipdate = orderdate + rng.int_range(1, 121) as i32;
            let commitdate = orderdate + rng.int_range(30, 90) as i32;
            let receiptdate = shipdate + rng.int_range(1, 30) as i32;
            rows.push(row(vec![
                Value::Int(ok),
                Value::Int(rng.int_range(1, parts)),
                Value::Int(rng.int_range(1, suppliers)),
                Value::Int(ln),
                Value::Float(quantity),
                Value::Float(extended),
                Value::Float((rng.int_range(0, 10) as f64) / 100.0),
                Value::Float((rng.int_range(0, 8) as f64) / 100.0),
                Value::str(*rng.pick(text::RETURN_FLAGS)),
                Value::str(*rng.pick(text::LINE_STATUS)),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::str(*rng.pick(text::SHIP_INSTRUCT)),
                Value::str(*rng.pick(text::SHIP_MODES)),
                Value::Str(pool.pick(&mut rng)),
            ]));
        }
    }
    t.extend(rows);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TpchConfig {
        TpchConfig {
            scale: 0.001,
            seed: 42,
        }
    }

    #[test]
    fn row_counts_scale() {
        let cfg = tiny();
        assert_eq!(cfg.rows(TpchTable::Region), 5);
        assert_eq!(cfg.rows(TpchTable::Nation), 25);
        assert_eq!(cfg.rows(TpchTable::Customer), 150);
        assert_eq!(cfg.rows(TpchTable::Orders), 1500);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = tiny();
        let a = generate_table(&cfg, TpchTable::Customer);
        let b = generate_table(&cfg, TpchTable::Customer);
        assert_eq!(a.row_count(), b.row_count());
        for (ra, rb) in a.scan().zip(b.scan()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn lineitem_orderkeys_join_orders() {
        let cfg = tiny();
        let orders = generate_table(&cfg, TpchTable::Orders);
        let lineitem = generate_table(&cfg, TpchTable::Lineitem);
        let max_ok = orders.row_count() as i64;
        // 1-7 lines per order on average 4.
        let ratio = lineitem.row_count() as f64 / orders.row_count() as f64;
        assert!((2.5..=5.5).contains(&ratio), "ratio {ratio}");
        for r in lineitem.scan().take(500) {
            let ok = r[0].as_i64().unwrap();
            assert!((1..=max_ok).contains(&ok));
        }
    }

    #[test]
    fn lineitem_shipdate_after_orderdate() {
        let cfg = tiny();
        let orders = generate_table(&cfg, TpchTable::Orders);
        let lineitem = generate_table(&cfg, TpchTable::Lineitem);
        let odate: Vec<i64> = orders.scan().map(|r| r[4].as_i64().unwrap()).collect();
        for r in lineitem.scan().take(2000) {
            let ok = r[0].as_i64().unwrap() as usize;
            let ship = r[10].as_i64().unwrap();
            assert!(ship > odate[ok - 1], "shipdate precedes orderdate");
        }
    }

    #[test]
    fn orderdate_selectivity_matches_dbgen_shape() {
        // `o_orderdate < 1996-07-01` selects ~68% of orders in dbgen.
        let cfg = TpchConfig {
            scale: 0.004,
            seed: 9,
        };
        let orders = generate_table(&cfg, TpchTable::Orders);
        let cutoff = cse_storage::dates::parse_date("1996-07-01").unwrap() as i64;
        let sel = orders
            .scan()
            .filter(|r| r[4].as_i64().unwrap() < cutoff)
            .count() as f64
            / orders.row_count() as f64;
        assert!((0.6..0.8).contains(&sel), "selectivity {sel}");
    }

    #[test]
    fn catalog_has_all_tables_with_stats() {
        let cfg = tiny();
        let cat = generate_catalog(&cfg);
        for t in TpchTable::ALL {
            assert!(cat.contains(t.name()), "{} missing", t.name());
            let stats = cat.stats(t.name()).unwrap();
            assert!(stats.row_count > 0);
        }
        // Nation key stats: 25 distinct values 0..24.
        let ns = cat.stats("nation").unwrap();
        assert_eq!(ns.row_count, 25);
        assert_eq!(ns.columns[0].distinct, 25);
    }

    #[test]
    fn customer_nationkey_in_range() {
        let cfg = tiny();
        let c = generate_table(&cfg, TpchTable::Customer);
        for r in c.scan() {
            let nk = r[3].as_i64().unwrap();
            assert!((0..25).contains(&nk));
        }
    }
}
