//! # cse-tpch
//!
//! Deterministic, in-memory TPC-H data generation. Substitutes for the
//! paper's 1 GB dbgen database: the distributions that drive selectivity
//! and join cardinality estimates are faithful; free text is synthetic.

pub mod generator;
pub mod rng;
pub mod schema;
pub mod text;

pub use generator::{
    customer_row, generate_catalog, generate_table, TpchConfig, END_DATE, START_DATE,
};
pub use schema::TpchTable;
