//! The eight TPC-H table schemas.

use cse_storage::{DataType, Schema};

/// Identifies one of the eight TPC-H tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchTable {
    Region,
    Nation,
    Supplier,
    Customer,
    Part,
    PartSupp,
    Orders,
    Lineitem,
}

impl TpchTable {
    pub const ALL: [TpchTable; 8] = [
        TpchTable::Region,
        TpchTable::Nation,
        TpchTable::Supplier,
        TpchTable::Customer,
        TpchTable::Part,
        TpchTable::PartSupp,
        TpchTable::Orders,
        TpchTable::Lineitem,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            TpchTable::Region => "region",
            TpchTable::Nation => "nation",
            TpchTable::Supplier => "supplier",
            TpchTable::Customer => "customer",
            TpchTable::Part => "part",
            TpchTable::PartSupp => "partsupp",
            TpchTable::Orders => "orders",
            TpchTable::Lineitem => "lineitem",
        }
    }

    /// Base cardinality at scale factor 1 (lineitem is approximate: dbgen
    /// produces ~6M rows as 1-7 lines per order).
    pub fn base_rows(&self) -> u64 {
        match self {
            TpchTable::Region => 5,
            TpchTable::Nation => 25,
            TpchTable::Supplier => 10_000,
            TpchTable::Customer => 150_000,
            TpchTable::Part => 200_000,
            TpchTable::PartSupp => 800_000,
            TpchTable::Orders => 1_500_000,
            TpchTable::Lineitem => 6_000_000,
        }
    }

    pub fn schema(&self) -> Schema {
        use DataType::*;
        match self {
            TpchTable::Region => {
                Schema::from_pairs(&[("r_regionkey", Int), ("r_name", Str), ("r_comment", Str)])
            }
            TpchTable::Nation => Schema::from_pairs(&[
                ("n_nationkey", Int),
                ("n_name", Str),
                ("n_regionkey", Int),
                ("n_comment", Str),
            ]),
            TpchTable::Supplier => Schema::from_pairs(&[
                ("s_suppkey", Int),
                ("s_name", Str),
                ("s_address", Str),
                ("s_nationkey", Int),
                ("s_phone", Str),
                ("s_acctbal", Float),
                ("s_comment", Str),
            ]),
            TpchTable::Customer => Schema::from_pairs(&[
                ("c_custkey", Int),
                ("c_name", Str),
                ("c_address", Str),
                ("c_nationkey", Int),
                ("c_phone", Str),
                ("c_acctbal", Float),
                ("c_mktsegment", Str),
                ("c_comment", Str),
            ]),
            TpchTable::Part => Schema::from_pairs(&[
                ("p_partkey", Int),
                ("p_name", Str),
                ("p_mfgr", Str),
                ("p_brand", Str),
                ("p_type", Str),
                ("p_size", Int),
                ("p_container", Str),
                ("p_retailprice", Float),
                ("p_comment", Str),
            ]),
            TpchTable::PartSupp => Schema::from_pairs(&[
                ("ps_partkey", Int),
                ("ps_suppkey", Int),
                ("ps_availqty", Int),
                ("ps_supplycost", Float),
                ("ps_comment", Str),
            ]),
            TpchTable::Orders => Schema::from_pairs(&[
                ("o_orderkey", Int),
                ("o_custkey", Int),
                ("o_orderstatus", Str),
                ("o_totalprice", Float),
                ("o_orderdate", Date),
                ("o_orderpriority", Str),
                ("o_clerk", Str),
                ("o_shippriority", Int),
                ("o_comment", Str),
            ]),
            TpchTable::Lineitem => Schema::from_pairs(&[
                ("l_orderkey", Int),
                ("l_partkey", Int),
                ("l_suppkey", Int),
                ("l_linenumber", Int),
                ("l_quantity", Float),
                ("l_extendedprice", Float),
                ("l_discount", Float),
                ("l_tax", Float),
                ("l_returnflag", Str),
                ("l_linestatus", Str),
                ("l_shipdate", Date),
                ("l_commitdate", Date),
                ("l_receiptdate", Date),
                ("l_shipinstruct", Str),
                ("l_shipmode", Str),
                ("l_comment", Str),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_have_expected_arity() {
        assert_eq!(TpchTable::Region.schema().len(), 3);
        assert_eq!(TpchTable::Nation.schema().len(), 4);
        assert_eq!(TpchTable::Customer.schema().len(), 8);
        assert_eq!(TpchTable::Orders.schema().len(), 9);
        assert_eq!(TpchTable::Lineitem.schema().len(), 16);
        assert_eq!(TpchTable::Part.schema().len(), 9);
        assert_eq!(TpchTable::PartSupp.schema().len(), 5);
        assert_eq!(TpchTable::Supplier.schema().len(), 7);
    }

    #[test]
    fn names_are_lowercase() {
        for t in TpchTable::ALL {
            assert_eq!(t.name(), t.name().to_ascii_lowercase());
        }
    }

    #[test]
    fn key_columns_resolve() {
        assert_eq!(TpchTable::Customer.schema().index_of("c_custkey"), Some(0));
        assert_eq!(TpchTable::Orders.schema().index_of("o_orderdate"), Some(4));
        assert_eq!(
            TpchTable::Lineitem.schema().index_of("l_extendedprice"),
            Some(5)
        );
    }
}
