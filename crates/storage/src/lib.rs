//! # cse-storage
//!
//! In-memory storage substrate for the similar-subexpression reproduction:
//! typed values, schemas, row tables, statistics, secondary indexes, delta
//! tables for view maintenance, and a catalog tying them together.
//!
//! This crate plays the role of SQL Server's storage engine in the paper's
//! experiments: base tables hold the TPC-H data, spool operators
//! materialize covering subexpressions into work tables ([`Table`] values
//! created at runtime), and updates captured in [`DeltaTable`]s drive
//! materialized-view maintenance (§6.4 of the paper).

pub mod catalog;
pub mod dates;
pub mod delta;
pub mod error;
pub mod index;
pub mod schema;
pub mod stats;
pub mod table;
pub mod testkit;
pub mod value;

pub use catalog::{Catalog, CatalogEntry, CatalogMutation, MaterializedView};
pub use delta::{DeltaAction, DeltaTable};
pub use error::StorageError;
pub use index::{BTreeIndex, HashIndex};
pub use schema::{ColumnDef, Schema, SchemaRef};
pub use stats::{ColumnStats, TableStats};
pub use table::{row, Row, Table};
pub use value::{DataType, Value};
