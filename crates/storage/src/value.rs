//! Typed scalar values and data types used throughout the engine.
//!
//! Values are small, cheaply clonable (strings are `Arc<str>`), totally
//! ordered (floats via IEEE total order) and hashable, so they can serve as
//! hash-join and group-by keys directly.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The data types supported by the storage layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (used for prices, discounts and other decimals).
    Float,
    /// UTF-8 string.
    Str,
    /// Date stored as days since 1970-01-01.
    Date,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Average in-memory width in bytes used by the cost model for
    /// materialization estimates.
    pub fn width(&self) -> usize {
        match self {
            DataType::Int | DataType::Float | DataType::Date => 8,
            DataType::Bool => 1,
            DataType::Str => 24,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Date => "DATE",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A runtime scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    /// Days since the Unix epoch.
    Date(i32),
    Bool(bool),
}

impl Value {
    /// String constructor that interns into an `Arc<str>`.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Parse a `YYYY-MM-DD` literal into a [`Value::Date`].
    pub fn date(s: &str) -> Option<Value> {
        crate::dates::parse_date(s).map(Value::Date)
    }

    /// The dynamic type of this value, if it is not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and aggregation: ints and dates
    /// promote to float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Date(d) => Some(*d as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// In-memory width estimate for materialization costing.
    pub fn width(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Date(_) => 4,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len().max(8),
        }
    }

    /// Three-valued-logic comparison: NULL compares as unknown (`None`),
    /// numeric types compare cross-type.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                Some(a.total_cmp(&b))
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Value {
    /// Total order used for sorting and map keys: NULLs first, then by type
    /// tag, then by value. Distinct from [`Value::sql_cmp`], which implements
    /// SQL's three-valued comparison semantics.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 2, // ints and floats share a numeric class
                Value::Date(_) => 3,
                Value::Str(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            _ => tag(self).cmp(&tag(other)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Integral floats must hash like the equal integer because the
            // total order treats them as equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "{}", crate::dates::format_date(*d)),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn total_order_is_consistent() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Int(-5),
            Value::Float(2.5),
            Value::Int(3),
            Value::str("abc"),
        ];
        let mut sorted = vals.clone();
        sorted.sort();
        // Sorting must be stable under repetition (i.e. a valid total order).
        let mut again = sorted.clone();
        again.sort();
        assert_eq!(sorted, again);
    }

    #[test]
    fn date_roundtrip() {
        let v = Value::date("1996-07-01").unwrap();
        assert_eq!(v.to_string(), "1996-07-01");
        assert!(Value::date("1996-06-30").unwrap() < v);
    }

    #[test]
    fn width_estimates() {
        assert_eq!(Value::Int(1).width(), 8);
        assert!(Value::str("hello world too long").width() >= 8);
    }
}
