//! Minimal proleptic-Gregorian date arithmetic (days since 1970-01-01).
//!
//! TPC-H only needs dates between 1992 and 1998, but the implementation is
//! correct for the whole i32 day range used here.

/// True iff `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

const DAYS_IN_MONTH: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Number of days in `month` (1-based) of `year`.
pub fn days_in_month(year: i32, month: u32) -> i32 {
    if month == 2 && is_leap_year(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

/// Days from 1970-01-01 to `year`-01-01 (negative before 1970).
fn days_to_year(year: i32) -> i64 {
    // Count leap years in [1970, year) or (year, 1970].
    fn leaps_before(y: i64) -> i64 {
        // number of leap years strictly before year y (from year 1)
        let y = y - 1;
        y / 4 - y / 100 + y / 400
    }
    (year as i64 - 1970) * 365 + (leaps_before(year as i64) - leaps_before(1970))
}

/// Convert a calendar date to days since the epoch. Returns `None` for
/// invalid dates.
pub fn to_days(year: i32, month: u32, day: u32) -> Option<i32> {
    if !(1..=12).contains(&month) || day == 0 || day as i32 > days_in_month(year, month) {
        return None;
    }
    let mut days = days_to_year(year);
    for m in 1..month {
        days += days_in_month(year, m) as i64;
    }
    days += day as i64 - 1;
    i32::try_from(days).ok()
}

/// Convert days since the epoch back to (year, month, day).
pub fn from_days(mut days: i32) -> (i32, u32, u32) {
    let mut year = 1970;
    loop {
        let len = if is_leap_year(year) { 366 } else { 365 };
        if days >= len {
            days -= len;
            year += 1;
        } else if days < 0 {
            year -= 1;
            days += if is_leap_year(year) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let mut month = 1u32;
    while days >= days_in_month(year, month) {
        days -= days_in_month(year, month);
        month += 1;
    }
    (year, month, days as u32 + 1)
}

/// Parse a `YYYY-MM-DD` string.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let year: i32 = parts.next()?.parse().ok()?;
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    to_days(year, month, day)
}

/// Format days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(to_days(1970, 1, 1), Some(0));
        assert_eq!(from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // 1996-07-01 is 9678 days after the epoch.
        assert_eq!(to_days(1996, 7, 1), Some(9678));
        assert_eq!(parse_date("1996-07-01"), Some(9678));
        assert_eq!(format_date(9678), "1996-07-01");
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(1996));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(1995));
        assert_eq!(days_in_month(1996, 2), 29);
        assert_eq!(days_in_month(1995, 2), 28);
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(parse_date("1995-02-29"), None);
        assert_eq!(parse_date("1995-13-01"), None);
        assert_eq!(parse_date("1995-00-10"), None);
        assert_eq!(parse_date("hello"), None);
    }

    #[test]
    fn roundtrip_range() {
        // Round-trip every ~37th day across the TPC-H range.
        let start = to_days(1992, 1, 1).unwrap();
        let end = to_days(1999, 1, 1).unwrap();
        let mut d = start;
        while d < end {
            let (y, m, dd) = from_days(d);
            assert_eq!(to_days(y, m, dd), Some(d));
            d += 37;
        }
    }

    #[test]
    fn pre_epoch() {
        assert_eq!(to_days(1969, 12, 31), Some(-1));
        assert_eq!(from_days(-1), (1969, 12, 31));
    }
}
