//! Table schemas: ordered, named, typed columns.

use crate::value::DataType;
use std::fmt;
use std::sync::Arc;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    /// Whether NULLs may appear; the TPC-H tables are all NOT NULL.
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// An ordered list of column definitions shared by a table and its rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            columns: pairs.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect(),
        }
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Index of the column with the given name (case-insensitive, as in SQL).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Average row width in bytes, used by the cost model.
    pub fn row_width(&self) -> usize {
        self.columns.iter().map(|c| c.data_type.width()).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_of_is_case_insensitive() {
        let s = Schema::from_pairs(&[("C_CustKey", DataType::Int), ("c_name", DataType::Str)]);
        assert_eq!(s.index_of("c_custkey"), Some(0));
        assert_eq!(s.index_of("C_NAME"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn row_width_sums_column_widths() {
        let s = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        assert_eq!(s.row_width(), 8 + 24);
    }

    #[test]
    fn display_formats() {
        let s = Schema::from_pairs(&[("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(a INT)");
    }
}
