//! The catalog: tables, statistics, indexes and materialized views.

use crate::error::StorageError;
use crate::index::{BTreeIndex, HashIndex};
use crate::stats::TableStats;
use crate::table::Table;
use std::collections::HashMap;
use std::sync::Arc;

/// A registered materialized view: its name doubles as a table in the
/// catalog, plus the SQL text of its definition (the maintenance planner
/// re-parses the definition to build maintenance expressions).
#[derive(Debug, Clone)]
pub struct MaterializedView {
    pub name: String,
    pub definition_sql: String,
}

/// One registered table together with its statistics and indexes.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    pub table: Arc<Table>,
    pub stats: Arc<TableStats>,
    pub hash_indexes: Vec<Arc<HashIndex>>,
    pub btree_indexes: Vec<Arc<BTreeIndex>>,
}

/// Name-to-table registry shared by the planner, optimizer and executor.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    entries: HashMap<String, CatalogEntry>,
    views: HashMap<String, MaterializedView>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table, computing its statistics with a full scan.
    pub fn register_table(&mut self, table: Table) -> Result<(), StorageError> {
        self.register_table_with_stats(Arc::new(TableStats::analyze(&table)), table)
    }

    /// Register a table with precomputed statistics (used by the TPC-H
    /// loader, which knows the stats as it generates).
    pub fn register_table_with_stats(
        &mut self,
        stats: Arc<TableStats>,
        table: Table,
    ) -> Result<(), StorageError> {
        let key = table.name().to_ascii_lowercase();
        if self.entries.contains_key(&key) {
            return Err(StorageError::DuplicateTable(key));
        }
        self.entries.insert(
            key,
            CatalogEntry {
                table: Arc::new(table),
                stats,
                hash_indexes: Vec::new(),
                btree_indexes: Vec::new(),
            },
        );
        Ok(())
    }

    /// Replace a table's contents (used by maintenance and by tests). The
    /// statistics are recomputed.
    pub fn replace_table(&mut self, table: Table) {
        let key = table.name().to_ascii_lowercase();
        let stats = Arc::new(TableStats::analyze(&table));
        let (h, b) = match self.entries.remove(&key) {
            Some(e) => (e.hash_indexes, e.btree_indexes),
            None => (Vec::new(), Vec::new()),
        };
        // Indexes referencing the old contents are dropped; callers rebuild
        // the ones they need.
        let _ = (h, b);
        self.entries.insert(
            key,
            CatalogEntry {
                table: Arc::new(table),
                stats,
                hash_indexes: Vec::new(),
                btree_indexes: Vec::new(),
            },
        );
    }

    pub fn drop_table(&mut self, name: &str) -> Option<CatalogEntry> {
        self.entries.remove(&name.to_ascii_lowercase())
    }

    pub fn get(&self, name: &str) -> Result<&CatalogEntry, StorageError> {
        self.entries
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    pub fn table(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        Ok(self.get(name)?.table.clone())
    }

    pub fn stats(&self, name: &str) -> Result<Arc<TableStats>, StorageError> {
        Ok(self.get(name)?.stats.clone())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(&name.to_ascii_lowercase())
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Build and attach a B-tree index on `column` of table `name`.
    pub fn create_btree_index(&mut self, name: &str, column: &str) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let entry = self
            .entries
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        let col =
            entry
                .table
                .schema()
                .index_of(column)
                .ok_or_else(|| StorageError::UnknownColumn {
                    table: name.to_string(),
                    column: column.to_string(),
                })?;
        let idx = BTreeIndex::build(&entry.table, col);
        entry.btree_indexes.push(Arc::new(idx));
        Ok(())
    }

    /// Build and attach a hash index on `column` of table `name`.
    pub fn create_hash_index(&mut self, name: &str, column: &str) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let entry = self
            .entries
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        let col =
            entry
                .table
                .schema()
                .index_of(column)
                .ok_or_else(|| StorageError::UnknownColumn {
                    table: name.to_string(),
                    column: column.to_string(),
                })?;
        let idx = HashIndex::build(&entry.table, col);
        entry.hash_indexes.push(Arc::new(idx));
        Ok(())
    }

    /// Register a materialized view. The view's *contents* must be
    /// registered separately as a table of the same name.
    pub fn register_view(&mut self, view: MaterializedView) {
        self.views.insert(view.name.to_ascii_lowercase(), view);
    }

    pub fn view(&self, name: &str) -> Option<&MaterializedView> {
        self.views.get(&name.to_ascii_lowercase())
    }

    pub fn views(&self) -> impl Iterator<Item = &MaterializedView> {
        self.views.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::row;
    use crate::value::{DataType, Value};

    fn t(name: &str) -> Table {
        let mut t = Table::new(name, Schema::from_pairs(&[("a", DataType::Int)]));
        t.push(row(vec![Value::Int(7)])).unwrap();
        t
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register_table(t("Foo")).unwrap();
        assert!(c.contains("foo"));
        assert!(c.contains("FOO"));
        assert_eq!(c.table("foo").unwrap().row_count(), 1);
        assert_eq!(c.stats("foo").unwrap().row_count, 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut c = Catalog::new();
        c.register_table(t("foo")).unwrap();
        assert!(matches!(
            c.register_table(t("FOO")),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn unknown_table() {
        let c = Catalog::new();
        assert!(matches!(
            c.table("nope"),
            Err(StorageError::UnknownTable(_))
        ));
    }

    #[test]
    fn index_creation() {
        let mut c = Catalog::new();
        c.register_table(t("foo")).unwrap();
        c.create_btree_index("foo", "a").unwrap();
        c.create_hash_index("foo", "a").unwrap();
        let e = c.get("foo").unwrap();
        assert_eq!(e.btree_indexes.len(), 1);
        assert_eq!(e.hash_indexes.len(), 1);
        assert!(c.create_btree_index("foo", "zzz").is_err());
    }

    #[test]
    fn views() {
        let mut c = Catalog::new();
        c.register_view(MaterializedView {
            name: "v1".into(),
            definition_sql: "select 1".into(),
        });
        assert!(c.view("V1").is_some());
        assert_eq!(c.views().count(), 1);
    }

    #[test]
    fn replace_table_recomputes_stats() {
        let mut c = Catalog::new();
        c.register_table(t("foo")).unwrap();
        let mut t2 = Table::new("foo", Schema::from_pairs(&[("a", DataType::Int)]));
        t2.push(row(vec![Value::Int(1)])).unwrap();
        t2.push(row(vec![Value::Int(2)])).unwrap();
        c.replace_table(t2);
        assert_eq!(c.stats("foo").unwrap().row_count, 2);
    }
}
