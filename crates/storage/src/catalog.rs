//! The catalog: tables, statistics, indexes and materialized views.

use crate::delta::DeltaTable;
use crate::error::StorageError;
use crate::index::{BTreeIndex, HashIndex};
use crate::stats::TableStats;
use crate::table::{Row, Table};
use std::collections::HashMap;
use std::sync::Arc;

/// A registered materialized view: its name doubles as a table in the
/// catalog, plus the SQL text of its definition (the maintenance planner
/// re-parses the definition to build maintenance expressions).
#[derive(Debug, Clone)]
pub struct MaterializedView {
    pub name: String,
    pub definition_sql: String,
}

/// A replayable catalog mutation.
///
/// Every way the catalog can change is expressible as one of these
/// variants, and [`Catalog::apply_mutation`] is the single code path that
/// performs them. The durability layer (`cse-durable`) serializes
/// mutations into its write-ahead log and replays them through the same
/// `apply_mutation` during recovery, so a recovered catalog cannot diverge
/// from the live one by construction.
#[derive(Debug, Clone)]
pub enum CatalogMutation {
    /// Register a new table (statistics recomputed with a full scan).
    RegisterTable { table: Table },
    /// Replace a table's contents; stale stats and indexes are dropped.
    ReplaceTable { table: Table },
    /// Drop a table (and a registered view of the same name, if any).
    DropTable { name: String },
    /// Build a B-tree index on `table.column`.
    CreateBtreeIndex { table: String, column: String },
    /// Build a hash index on `table.column`.
    CreateHashIndex { table: String, column: String },
    /// Register a materialized-view definition.
    RegisterView {
        name: String,
        definition_sql: String,
    },
    /// Apply a captured delta (inserts minus deletes) to its base table.
    ApplyDelta { delta: DeltaTable },
}

impl CatalogMutation {
    /// Short human-readable tag for logs and diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            CatalogMutation::RegisterTable { .. } => "register_table",
            CatalogMutation::ReplaceTable { .. } => "replace_table",
            CatalogMutation::DropTable { .. } => "drop_table",
            CatalogMutation::CreateBtreeIndex { .. } => "create_btree_index",
            CatalogMutation::CreateHashIndex { .. } => "create_hash_index",
            CatalogMutation::RegisterView { .. } => "register_view",
            CatalogMutation::ApplyDelta { .. } => "apply_delta",
        }
    }
}

/// One registered table together with its statistics and indexes.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    pub table: Arc<Table>,
    pub stats: Arc<TableStats>,
    pub hash_indexes: Vec<Arc<HashIndex>>,
    pub btree_indexes: Vec<Arc<BTreeIndex>>,
}

/// Name-to-table registry shared by the planner, optimizer and executor.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    entries: HashMap<String, CatalogEntry>,
    views: HashMap<String, MaterializedView>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table, computing its statistics with a full scan.
    pub fn register_table(&mut self, table: Table) -> Result<(), StorageError> {
        self.register_table_with_stats(Arc::new(TableStats::analyze(&table)), table)
    }

    /// Register a table with precomputed statistics (used by the TPC-H
    /// loader, which knows the stats as it generates).
    pub fn register_table_with_stats(
        &mut self,
        stats: Arc<TableStats>,
        table: Table,
    ) -> Result<(), StorageError> {
        let key = table.name().to_ascii_lowercase();
        if self.entries.contains_key(&key) {
            return Err(StorageError::DuplicateTable(key));
        }
        self.entries.insert(
            key,
            CatalogEntry {
                table: Arc::new(table),
                stats,
                hash_indexes: Vec::new(),
                btree_indexes: Vec::new(),
            },
        );
        Ok(())
    }

    /// Replace a table's contents (used by maintenance and by tests). The
    /// statistics are recomputed.
    pub fn replace_table(&mut self, table: Table) {
        let key = table.name().to_ascii_lowercase();
        let stats = Arc::new(TableStats::analyze(&table));
        let (h, b) = match self.entries.remove(&key) {
            Some(e) => (e.hash_indexes, e.btree_indexes),
            None => (Vec::new(), Vec::new()),
        };
        // Indexes referencing the old contents are dropped; callers rebuild
        // the ones they need.
        let _ = (h, b);
        self.entries.insert(
            key,
            CatalogEntry {
                table: Arc::new(table),
                stats,
                hash_indexes: Vec::new(),
                btree_indexes: Vec::new(),
            },
        );
    }

    /// Drop a table. A materialized view registered under the same name is
    /// dropped with it (its contents table is what is being removed), so
    /// the catalog never holds a view definition without backing storage.
    pub fn drop_table(&mut self, name: &str) -> Option<CatalogEntry> {
        let key = name.to_ascii_lowercase();
        self.views.remove(&key);
        self.entries.remove(&key)
    }

    pub fn get(&self, name: &str) -> Result<&CatalogEntry, StorageError> {
        self.entries
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    pub fn table(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        Ok(self.get(name)?.table.clone())
    }

    pub fn stats(&self, name: &str) -> Result<Arc<TableStats>, StorageError> {
        Ok(self.get(name)?.stats.clone())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(&name.to_ascii_lowercase())
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Overwrite an entry wholesale, bypassing the invariant maintenance
    /// every normal mutation path performs. Exists only so verifier tests
    /// can synthesize corrupt states (stale stats, stale indexes) that the
    /// public API refuses to produce.
    #[doc(hidden)]
    pub fn put_entry_for_test(&mut self, name: &str, entry: CatalogEntry) {
        self.entries.insert(name.to_ascii_lowercase(), entry);
    }

    /// Build and attach a B-tree index on `column` of table `name`.
    pub fn create_btree_index(&mut self, name: &str, column: &str) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let entry = self
            .entries
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        let col =
            entry
                .table
                .schema()
                .index_of(column)
                .ok_or_else(|| StorageError::UnknownColumn {
                    table: name.to_string(),
                    column: column.to_string(),
                })?;
        let idx = BTreeIndex::build(&entry.table, col);
        entry.btree_indexes.push(Arc::new(idx));
        Ok(())
    }

    /// Build and attach a hash index on `column` of table `name`.
    pub fn create_hash_index(&mut self, name: &str, column: &str) -> Result<(), StorageError> {
        let key = name.to_ascii_lowercase();
        let entry = self
            .entries
            .get_mut(&key)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        let col =
            entry
                .table
                .schema()
                .index_of(column)
                .ok_or_else(|| StorageError::UnknownColumn {
                    table: name.to_string(),
                    column: column.to_string(),
                })?;
        let idx = HashIndex::build(&entry.table, col);
        entry.hash_indexes.push(Arc::new(idx));
        Ok(())
    }

    /// Register a materialized view. The view's *contents* must be
    /// registered separately as a table of the same name.
    pub fn register_view(&mut self, view: MaterializedView) {
        self.views.insert(view.name.to_ascii_lowercase(), view);
    }

    pub fn view(&self, name: &str) -> Option<&MaterializedView> {
        self.views.get(&name.to_ascii_lowercase())
    }

    pub fn views(&self) -> impl Iterator<Item = &MaterializedView> {
        self.views.values()
    }

    /// Apply a captured delta to its base table: base rows minus the
    /// delta's deletes (multiset semantics) plus its inserts, replacing the
    /// base contents and recomputing statistics. Stale indexes are dropped,
    /// exactly as [`Catalog::replace_table`] does.
    pub fn apply_delta(&mut self, delta: &DeltaTable) -> Result<(), StorageError> {
        let base = self.table(&delta.base)?;
        if delta.inserts.schema().as_ref() != base.schema().as_ref() {
            return Err(StorageError::ArityMismatch {
                table: delta.base.clone(),
                expected: base.schema().len(),
                got: delta.inserts.schema().len(),
            });
        }
        let mut pending: HashMap<Row, usize> = HashMap::new();
        for r in delta.deletes.scan() {
            *pending.entry(r.clone()).or_insert(0) += 1;
        }
        let mut rows: Vec<Row> = Vec::with_capacity(base.row_count() + delta.insert_count());
        for r in base.scan() {
            match pending.get_mut(r) {
                Some(n) if *n > 0 => *n -= 1,
                _ => rows.push(r.clone()),
            }
        }
        rows.extend(delta.inserts.scan().cloned());
        let replacement = Table::with_rows(base.name(), base.schema().as_ref().clone(), rows);
        self.replace_table(replacement);
        Ok(())
    }

    /// Apply a journaled mutation. Live mutation and WAL replay share this
    /// single entry point, so recovery is deterministic by construction.
    pub fn apply_mutation(&mut self, m: &CatalogMutation) -> Result<(), StorageError> {
        match m {
            CatalogMutation::RegisterTable { table } => self.register_table(table.clone()),
            CatalogMutation::ReplaceTable { table } => {
                self.replace_table(table.clone());
                Ok(())
            }
            CatalogMutation::DropTable { name } => {
                self.drop_table(name);
                Ok(())
            }
            CatalogMutation::CreateBtreeIndex { table, column } => {
                self.create_btree_index(table, column)
            }
            CatalogMutation::CreateHashIndex { table, column } => {
                self.create_hash_index(table, column)
            }
            CatalogMutation::RegisterView {
                name,
                definition_sql,
            } => {
                self.register_view(MaterializedView {
                    name: name.clone(),
                    definition_sql: definition_sql.clone(),
                });
                Ok(())
            }
            CatalogMutation::ApplyDelta { delta } => self.apply_delta(delta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::row;
    use crate::value::{DataType, Value};

    fn t(name: &str) -> Table {
        let mut t = Table::new(name, Schema::from_pairs(&[("a", DataType::Int)]));
        t.push(row(vec![Value::Int(7)])).unwrap();
        t
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register_table(t("Foo")).unwrap();
        assert!(c.contains("foo"));
        assert!(c.contains("FOO"));
        assert_eq!(c.table("foo").unwrap().row_count(), 1);
        assert_eq!(c.stats("foo").unwrap().row_count, 1);
    }

    #[test]
    fn duplicate_rejected() {
        let mut c = Catalog::new();
        c.register_table(t("foo")).unwrap();
        assert!(matches!(
            c.register_table(t("FOO")),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn unknown_table() {
        let c = Catalog::new();
        assert!(matches!(
            c.table("nope"),
            Err(StorageError::UnknownTable(_))
        ));
    }

    #[test]
    fn index_creation() {
        let mut c = Catalog::new();
        c.register_table(t("foo")).unwrap();
        c.create_btree_index("foo", "a").unwrap();
        c.create_hash_index("foo", "a").unwrap();
        let e = c.get("foo").unwrap();
        assert_eq!(e.btree_indexes.len(), 1);
        assert_eq!(e.hash_indexes.len(), 1);
        assert!(c.create_btree_index("foo", "zzz").is_err());
    }

    #[test]
    fn views() {
        let mut c = Catalog::new();
        c.register_view(MaterializedView {
            name: "v1".into(),
            definition_sql: "select 1".into(),
        });
        assert!(c.view("V1").is_some());
        assert_eq!(c.views().count(), 1);
    }

    #[test]
    fn replace_table_recomputes_stats() {
        let mut c = Catalog::new();
        c.register_table(t("foo")).unwrap();
        let mut t2 = Table::new("foo", Schema::from_pairs(&[("a", DataType::Int)]));
        t2.push(row(vec![Value::Int(1)])).unwrap();
        t2.push(row(vec![Value::Int(2)])).unwrap();
        c.replace_table(t2);
        assert_eq!(c.stats("foo").unwrap().row_count, 2);
    }

    #[test]
    fn replace_table_invalidates_stale_stats_and_indexes() {
        let mut c = Catalog::new();
        c.register_table(t("foo")).unwrap();
        c.create_btree_index("foo", "a").unwrap();
        c.create_hash_index("foo", "a").unwrap();
        let old_stats = c.stats("foo").unwrap();
        let mut t2 = Table::new("foo", Schema::from_pairs(&[("a", DataType::Int)]));
        for v in [1i64, 2, 3] {
            t2.push(row(vec![Value::Int(v)])).unwrap();
        }
        c.replace_table(t2);
        let e = c.get("foo").unwrap();
        // Indexes built over the old contents must be gone, not silently
        // pointing at stale row ids.
        assert!(e.btree_indexes.is_empty());
        assert!(e.hash_indexes.is_empty());
        assert_eq!(e.stats.row_count, 3);
        assert_ne!(old_stats.row_count, e.stats.row_count);
    }

    #[test]
    fn drop_table_removes_same_named_view() {
        let mut c = Catalog::new();
        c.register_table(t("v1")).unwrap();
        c.register_view(MaterializedView {
            name: "v1".into(),
            definition_sql: "select a from foo".into(),
        });
        assert!(c.view("v1").is_some());
        assert!(c.drop_table("V1").is_some());
        // The view definition must not dangle without backing storage.
        assert!(c.view("v1").is_none());
        assert!(!c.contains("v1"));
    }

    #[test]
    fn apply_delta_inserts_and_deletes() {
        use crate::delta::{DeltaAction, DeltaTable};
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let mut base = Table::new("foo", schema.clone());
        for v in [1i64, 2, 2, 3] {
            base.push(row(vec![Value::Int(v)])).unwrap();
        }
        c.register_table(base).unwrap();
        let mut d = DeltaTable::new("foo", &schema);
        d.record(DeltaAction::Insert, row(vec![Value::Int(9)]))
            .unwrap();
        d.record(DeltaAction::Delete, row(vec![Value::Int(2)]))
            .unwrap();
        c.apply_delta(&d).unwrap();
        let got: Vec<i64> = c
            .table("foo")
            .unwrap()
            .scan()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        // Multiset delete: only one of the two 2s is removed.
        assert_eq!(got, vec![1, 2, 3, 9]);
        assert_eq!(c.stats("foo").unwrap().row_count, 4);
    }

    #[test]
    fn apply_delta_unknown_base_fails() {
        use crate::delta::DeltaTable;
        let mut c = Catalog::new();
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let d = DeltaTable::new("nope", &schema);
        assert!(matches!(
            c.apply_delta(&d),
            Err(StorageError::UnknownTable(_))
        ));
    }

    /// Property test: random mutation sequences applied through
    /// `apply_mutation` leave the catalog in a consistent state — stats
    /// always match table contents, no index survives a content change,
    /// and every registered view has a backing table.
    #[test]
    fn random_mutation_sequences_stay_consistent() {
        use crate::delta::{DeltaAction, DeltaTable};
        use crate::testkit::TestRng;

        let names = ["alpha", "beta", "gamma"];
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        for seed in [1u64, 7, 42, 1234] {
            let mut rng = TestRng::new(seed);
            let mut c = Catalog::new();
            for _ in 0..200 {
                let name = *rng.pick(&names);
                let m = match rng.range_usize(0, 7) {
                    0 => {
                        let mut tbl = Table::new(name, schema.clone());
                        for _ in 0..rng.range_usize(0, 5) {
                            tbl.push(row(vec![Value::Int(rng.range_i64(0, 10))]))
                                .unwrap();
                        }
                        CatalogMutation::RegisterTable { table: tbl }
                    }
                    1 => {
                        let mut tbl = Table::new(name, schema.clone());
                        for _ in 0..rng.range_usize(0, 5) {
                            tbl.push(row(vec![Value::Int(rng.range_i64(0, 10))]))
                                .unwrap();
                        }
                        CatalogMutation::ReplaceTable { table: tbl }
                    }
                    2 => CatalogMutation::DropTable { name: name.into() },
                    3 => CatalogMutation::CreateBtreeIndex {
                        table: name.into(),
                        column: "a".into(),
                    },
                    4 => CatalogMutation::CreateHashIndex {
                        table: name.into(),
                        column: "a".into(),
                    },
                    5 => CatalogMutation::RegisterView {
                        name: name.into(),
                        definition_sql: format!("select a from {name}"),
                    },
                    _ => {
                        let mut d = DeltaTable::new(name, &schema);
                        for _ in 0..rng.range_usize(0, 3) {
                            d.record(
                                DeltaAction::Insert,
                                row(vec![Value::Int(rng.range_i64(0, 10))]),
                            )
                            .unwrap();
                        }
                        for _ in 0..rng.range_usize(0, 2) {
                            d.record(
                                DeltaAction::Delete,
                                row(vec![Value::Int(rng.range_i64(0, 10))]),
                            )
                            .unwrap();
                        }
                        CatalogMutation::ApplyDelta { delta: d }
                    }
                };
                // Errors (duplicate registration, unknown base, …) are
                // legal outcomes; consistency must hold either way.
                let _ = c.apply_mutation(&m);
                for tname in c.table_names().map(str::to_string).collect::<Vec<_>>() {
                    let e = c.get(&tname).unwrap();
                    assert_eq!(e.stats.row_count as usize, e.table.row_count());
                    for idx in &e.btree_indexes {
                        assert!(idx.distinct_keys() <= e.table.row_count());
                    }
                }
            }
        }
    }
}
