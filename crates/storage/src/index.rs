//! Secondary indexes.
//!
//! Two flavours: an equality [`HashIndex`] and an ordered [`BTreeIndex`]
//! supporting range scans (e.g. TPC-H's clustered index on `o_orderdate`
//! that makes the paper's Example 7 consumer cheap). Indexes map key values
//! to row positions in the owning table.

use crate::table::Table;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// Equality index: value -> row ids.
#[derive(Debug, Clone)]
pub struct HashIndex {
    pub column: usize,
    map: HashMap<Value, Vec<u32>>,
}

impl HashIndex {
    /// Build over the given column of `table`.
    pub fn build(table: &Table, column: usize) -> Self {
        let mut map: HashMap<Value, Vec<u32>> = HashMap::with_capacity(table.row_count());
        for (i, r) in table.scan().enumerate() {
            map.entry(r[column].clone()).or_default().push(i as u32);
        }
        HashIndex { column, map }
    }

    pub fn lookup(&self, key: &Value) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// Ordered index: supports point and range lookups.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    pub column: usize,
    map: BTreeMap<Value, Vec<u32>>,
}

impl BTreeIndex {
    pub fn build(table: &Table, column: usize) -> Self {
        let mut map: BTreeMap<Value, Vec<u32>> = BTreeMap::new();
        for (i, r) in table.scan().enumerate() {
            map.entry(r[column].clone()).or_default().push(i as u32);
        }
        BTreeIndex { column, map }
    }

    pub fn lookup(&self, key: &Value) -> &[u32] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row ids whose key lies within the given bounds.
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> impl Iterator<Item = u32> + '_ {
        self.map
            .range::<Value, _>((lo, hi))
            .flat_map(|(_, ids)| ids.iter().copied())
    }

    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::row;
    use crate::value::DataType;

    fn sample() -> Table {
        let mut t = Table::new("t", Schema::from_pairs(&[("k", DataType::Int)]));
        for v in [5i64, 3, 5, 8, 1] {
            t.push(row(vec![Value::Int(v)])).unwrap();
        }
        t
    }

    #[test]
    fn hash_index_lookup() {
        let t = sample();
        let idx = HashIndex::build(&t, 0);
        assert_eq!(idx.lookup(&Value::Int(5)), &[0, 2]);
        assert_eq!(idx.lookup(&Value::Int(42)), &[] as &[u32]);
        assert_eq!(idx.distinct_keys(), 4);
    }

    #[test]
    fn btree_index_range() {
        let t = sample();
        let idx = BTreeIndex::build(&t, 0);
        let got: Vec<u32> = idx
            .range(
                Bound::Included(&Value::Int(3)),
                Bound::Excluded(&Value::Int(8)),
            )
            .collect();
        assert_eq!(got, vec![1, 0, 2]); // key 3 then key 5 (rows 0 and 2)
    }

    #[test]
    fn btree_point_lookup() {
        let t = sample();
        let idx = BTreeIndex::build(&t, 0);
        assert_eq!(idx.lookup(&Value::Int(1)), &[4]);
    }
}
