//! Deterministic test support: a tiny, dependency-free PRNG used by the
//! in-repo property tests.
//!
//! The build environment is fully offline, so we cannot rely on external
//! property-testing frameworks. Instead, the test suites draw cases from
//! this xorshift64* generator with fixed seeds, which keeps runs
//! reproducible across machines while still exploring a large input space.

/// A deterministic xorshift64* PRNG (Vigna, "An experimental exploration of
/// Marsaglia's xorshift generators, scrambled").
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a nonzero seed (zero is remapped).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `i64` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u128;
        lo + (self.next_u64() as u128 % span) as i64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.range_f64(0.0, 1.0) < p
    }

    /// Short lowercase ASCII string with length in `[0, max_len]`.
    pub fn small_string(&mut self, max_len: usize) -> String {
        let len = self.range_usize(0, max_len + 1);
        (0..len)
            .map(|_| (b'a' + (self.next_u64() % 26) as u8) as char)
            .collect()
    }

    /// Choose one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            let v = r.range_i64(-5, 17);
            assert!((-5..17).contains(&v));
            let f = r.range_f64(0.0, 1.0);
            assert!((0.0..1.0).contains(&f));
            let s = r.small_string(8);
            assert!(s.len() <= 8);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = TestRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
