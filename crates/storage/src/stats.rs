//! Table and column statistics used by the cardinality estimator.
//!
//! Statistics are computed by a single scan over a loaded table: row count,
//! and per column the min/max, an approximate distinct count and the average
//! width. Distinct counts are exact for the table sizes used here (a hash
//! set per column); for very large tables a sampling cut-over keeps the cost
//! bounded.

use crate::table::Table;
use crate::value::Value;
use std::collections::HashSet;

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Approximate number of distinct non-null values.
    pub distinct: u64,
    pub null_count: u64,
    /// Average value width in bytes.
    pub avg_width: f64,
}

impl ColumnStats {
    /// Statistics of an empty column.
    pub fn empty() -> Self {
        ColumnStats {
            min: None,
            max: None,
            distinct: 0,
            null_count: 0,
            avg_width: 8.0,
        }
    }

    /// Numeric range (max - min) if both bounds are numeric.
    pub fn numeric_range(&self) -> Option<f64> {
        let lo = self.min.as_ref()?.as_f64()?;
        let hi = self.max.as_ref()?.as_f64()?;
        Some((hi - lo).max(0.0))
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub row_count: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Stats that assume nothing: used when a table was registered without
    /// analysis. One row avoids divide-by-zero in the estimator.
    pub fn unknown(num_columns: usize) -> Self {
        TableStats {
            row_count: 1,
            columns: vec![ColumnStats::empty(); num_columns],
        }
    }

    /// Compute statistics with a full scan of `table`.
    pub fn analyze(table: &Table) -> Self {
        let ncols = table.schema().len();
        let nrows = table.row_count();
        // Exact distinct counting is fine up to a few million rows; above
        // that, sample deterministically.
        let sample_every = if nrows > 4_000_000 { 7 } else { 1 };
        let mut mins: Vec<Option<Value>> = vec![None; ncols];
        let mut maxs: Vec<Option<Value>> = vec![None; ncols];
        let mut sets: Vec<HashSet<Value>> = (0..ncols).map(|_| HashSet::new()).collect();
        let mut nulls = vec![0u64; ncols];
        let mut widths = vec![0u64; ncols];
        let mut sampled = 0u64;

        for (i, row) in table.scan().enumerate() {
            let in_sample = i % sample_every == 0;
            if in_sample {
                sampled += 1;
            }
            for (c, v) in row.iter().enumerate() {
                if v.is_null() {
                    nulls[c] += 1;
                    continue;
                }
                if !in_sample {
                    continue;
                }
                widths[c] += v.width() as u64;
                match &mins[c] {
                    Some(m) if m.total_cmp(v) != std::cmp::Ordering::Greater => {}
                    _ => mins[c] = Some(v.clone()),
                }
                match &maxs[c] {
                    Some(m) if m.total_cmp(v) != std::cmp::Ordering::Less => {}
                    _ => maxs[c] = Some(v.clone()),
                }
                sets[c].insert(v.clone());
            }
        }

        let scale = if sampled == 0 {
            1.0
        } else {
            nrows as f64 / sampled as f64
        };
        let columns = (0..ncols)
            .map(|c| ColumnStats {
                min: mins[c].take(),
                max: maxs[c].take(),
                distinct: ((sets[c].len() as f64 * scale).round() as u64)
                    .min(nrows as u64)
                    .max(if nrows > 0 { 1 } else { 0 }),
                null_count: nulls[c],
                avg_width: if sampled > 0 && !sets[c].is_empty() {
                    widths[c] as f64 / sampled as f64
                } else {
                    8.0
                },
            })
            .collect();

        TableStats {
            row_count: nrows as u64,
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::row;
    use crate::value::DataType;

    fn table_with_ints(vals: &[i64]) -> Table {
        let mut t = Table::new("t", Schema::from_pairs(&[("a", DataType::Int)]));
        for v in vals {
            t.push(row(vec![Value::Int(*v)])).unwrap();
        }
        t
    }

    #[test]
    fn analyze_basic() {
        let t = table_with_ints(&[1, 2, 2, 3, 3, 3]);
        let s = TableStats::analyze(&t);
        assert_eq!(s.row_count, 6);
        assert_eq!(s.columns[0].distinct, 3);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(3)));
        assert_eq!(s.columns[0].null_count, 0);
    }

    #[test]
    fn analyze_counts_nulls() {
        let mut t = Table::new("t", Schema::from_pairs(&[("a", DataType::Int)]));
        t.push(row(vec![Value::Null])).unwrap();
        t.push(row(vec![Value::Int(9)])).unwrap();
        let s = TableStats::analyze(&t);
        assert_eq!(s.columns[0].null_count, 1);
        assert_eq!(s.columns[0].distinct, 1);
    }

    #[test]
    fn numeric_range() {
        let t = table_with_ints(&[10, 30]);
        let s = TableStats::analyze(&t);
        assert_eq!(s.columns[0].numeric_range(), Some(20.0));
    }

    #[test]
    fn empty_table() {
        let t = table_with_ints(&[]);
        let s = TableStats::analyze(&t);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns[0].distinct, 0);
    }
}
