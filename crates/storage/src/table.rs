//! In-memory row-oriented tables and work tables.

use crate::error::StorageError;
use crate::schema::{Schema, SchemaRef};
use crate::value::Value;
use std::sync::Arc;

/// A materialized row. Boxed slice keeps the handle at two words.
pub type Row = Arc<[Value]>;

/// Build a row from values.
pub fn row(values: Vec<Value>) -> Row {
    Arc::from(values.into_boxed_slice())
}

/// An immutable-after-load, in-memory table. Base tables, spool work tables
/// and materialized-view contents all use this representation.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    rows: Vec<Row>,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema: Arc::new(schema),
            rows: Vec::new(),
        }
    }

    pub fn with_rows(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Self {
        Table {
            name: name.into(),
            schema: Arc::new(schema),
            rows,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Append a row, checking arity (type checks are the loader's job).
    pub fn push(&mut self, r: Row) -> Result<(), StorageError> {
        if r.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                table: self.name.clone(),
                expected: self.schema.len(),
                got: r.len(),
            });
        }
        self.rows.push(r);
        Ok(())
    }

    /// Append many rows without per-row arity checks (bulk load fast path);
    /// arity is debug-asserted.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) {
        for r in rows {
            debug_assert_eq!(r.len(), self.schema.len());
            self.rows.push(r);
        }
    }

    pub fn truncate(&mut self) {
        self.rows.clear();
    }

    /// Sequential scan iterator.
    pub fn scan(&self) -> impl Iterator<Item = &Row> + '_ {
        self.rows.iter()
    }

    /// Total bytes of row payload, used to report work-table sizes.
    pub fn byte_size(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::width).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn sample() -> Table {
        let mut t = Table::new(
            "t",
            Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]),
        );
        t.push(row(vec![Value::Int(1), Value::str("x")])).unwrap();
        t.push(row(vec![Value::Int(2), Value::str("y")])).unwrap();
        t
    }

    #[test]
    fn push_and_scan() {
        let t = sample();
        assert_eq!(t.row_count(), 2);
        let vals: Vec<i64> = t.scan().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(vals, vec![1, 2]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sample();
        let err = t.push(row(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn byte_size_positive() {
        assert!(sample().byte_size() > 0);
    }
}
