//! Storage-layer error type.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A row's arity did not match the table schema.
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// Lookup of an unknown table.
    UnknownTable(String),
    /// Lookup of an unknown column.
    UnknownColumn { table: String, column: String },
    /// A table with this name already exists.
    DuplicateTable(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "row arity mismatch for table '{table}': expected {expected} values, got {got}"
            ),
            StorageError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            StorageError::DuplicateTable(t) => write!(f, "table '{t}' already exists"),
        }
    }
}

impl std::error::Error for StorageError {}
