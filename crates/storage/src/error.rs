//! Storage-layer error type.

use crate::value::DataType;
use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A row's arity did not match the table schema.
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// A row value's type did not match the column's declared type
    /// (`got: None` means a NULL arrived in a NOT NULL column).
    TypeMismatch {
        table: String,
        column: String,
        expected: DataType,
        got: Option<DataType>,
    },
    /// Lookup of an unknown table.
    UnknownTable(String),
    /// Lookup of an unknown column.
    UnknownColumn { table: String, column: String },
    /// A table with this name already exists.
    DuplicateTable(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch {
                table,
                expected,
                got,
            } => write!(
                f,
                "row arity mismatch for table '{table}': expected {expected} values, got {got}"
            ),
            StorageError::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => {
                let got = got.map(|t| t.to_string()).unwrap_or_else(|| "NULL".into());
                write!(
                    f,
                    "type mismatch for column '{column}' of table '{table}': expected {expected}, got {got}"
                )
            }
            StorageError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            StorageError::DuplicateTable(t) => write!(f, "table '{t}' already exists"),
        }
    }
}

impl std::error::Error for StorageError {}
