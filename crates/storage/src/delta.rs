//! Delta tables for materialized-view maintenance (paper §6.4).
//!
//! When a base table is updated, the inserted/deleted tuples are captured in
//! an internal work table — the *delta table* — which then drives
//! maintenance for every affected view. The paper treats delta tables as
//! special tables when generating table signatures; here a delta is just a
//! [`Table`] named `Δtable` plus the action column, and the catalog knows
//! which base table it shadows.

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::{Row, Table};
use std::sync::Arc;

/// Kind of change captured by a delta row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaAction {
    Insert,
    Delete,
}

/// A captured set of changes against one base table.
///
/// The experiments in §6.4 update the `customer` table with inserts, so the
/// common case is an insert-only delta; deletes are carried for
/// completeness (maintenance treats them as negative multiplicities).
#[derive(Debug, Clone)]
pub struct DeltaTable {
    /// Name of the base table this delta applies to.
    pub base: String,
    /// Inserted rows (same schema as the base table).
    pub inserts: Table,
    /// Deleted rows.
    pub deletes: Table,
}

impl DeltaTable {
    /// Create an empty delta for a base table with the given schema.
    pub fn new(base: impl Into<String>, schema: &Schema) -> Self {
        let base = base.into();
        DeltaTable {
            inserts: Table::new(format!("Δ{base}+"), schema.clone()),
            deletes: Table::new(format!("Δ{base}-"), schema.clone()),
            base,
        }
    }

    /// Capture one changed row, validating it against the delta's schema.
    ///
    /// Arity and per-column type errors are reported here, at capture time,
    /// rather than deferred to view maintenance where the offending row is
    /// no longer identifiable. NULLs are admitted only in nullable columns.
    pub fn record(&mut self, action: DeltaAction, row: Row) -> Result<(), StorageError> {
        let target = match action {
            DeltaAction::Insert => &mut self.inserts,
            DeltaAction::Delete => &mut self.deletes,
        };
        let schema = target.schema().clone();
        if row.len() != schema.len() {
            return Err(StorageError::ArityMismatch {
                table: target.name().to_string(),
                expected: schema.len(),
                got: row.len(),
            });
        }
        for (v, col) in row.iter().zip(schema.columns()) {
            let ok = match v.data_type() {
                None => col.nullable,
                Some(t) => t == col.data_type,
            };
            if !ok {
                return Err(StorageError::TypeMismatch {
                    table: target.name().to_string(),
                    column: col.name.clone(),
                    expected: col.data_type,
                    got: v.data_type(),
                });
            }
        }
        target.extend([row]);
        Ok(())
    }

    pub fn insert_count(&self) -> usize {
        self.inserts.row_count()
    }

    pub fn delete_count(&self) -> usize {
        self.deletes.row_count()
    }

    pub fn is_empty(&self) -> bool {
        self.insert_count() == 0 && self.delete_count() == 0
    }

    /// The delta's insert side as a shareable table named like the paper's
    /// internal work table, for registration in a catalog.
    pub fn insert_table(&self) -> Arc<Table> {
        Arc::new(self.inserts.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::row;
    use crate::value::{DataType, Value};

    #[test]
    fn record_and_count() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let mut d = DeltaTable::new("customer", &schema);
        assert!(d.is_empty());
        d.record(DeltaAction::Insert, row(vec![Value::Int(1)]))
            .unwrap();
        d.record(DeltaAction::Insert, row(vec![Value::Int(2)]))
            .unwrap();
        d.record(DeltaAction::Delete, row(vec![Value::Int(9)]))
            .unwrap();
        assert_eq!(d.insert_count(), 2);
        assert_eq!(d.delete_count(), 1);
        assert!(!d.is_empty());
        assert_eq!(d.insert_table().name(), "Δcustomer+");
    }

    #[test]
    fn record_rejects_arity_mismatch() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        let mut d = DeltaTable::new("customer", &schema);
        let err = d
            .record(DeltaAction::Insert, row(vec![Value::Int(1)]))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::StorageError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
        assert!(d.is_empty());
    }

    #[test]
    fn record_rejects_type_mismatch() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let mut d = DeltaTable::new("customer", &schema);
        let err = d
            .record(DeltaAction::Delete, row(vec![Value::str("oops")]))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::StorageError::TypeMismatch {
                expected: DataType::Int,
                got: Some(DataType::Str),
                ..
            }
        ));
        assert!(d.is_empty());
    }

    #[test]
    fn record_rejects_null_in_not_null_column() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let mut d = DeltaTable::new("customer", &schema);
        let err = d
            .record(DeltaAction::Insert, row(vec![Value::Null]))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::StorageError::TypeMismatch { got: None, .. }
        ));
    }

    #[test]
    fn record_accepts_null_in_nullable_column() {
        use crate::schema::ColumnDef;
        let schema = Schema::new(vec![ColumnDef::new("a", DataType::Int).nullable()]);
        let mut d = DeltaTable::new("customer", &schema);
        d.record(DeltaAction::Insert, row(vec![Value::Null]))
            .unwrap();
        assert_eq!(d.insert_count(), 1);
    }
}
