//! Property tests for `Value`'s total order and hash — the contracts hash
//! joins, group-bys and sorts rely on.

use cse_storage::Value;
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|i| Value::Float(i as f64 / 4.0)),
        (-40000i32..40000).prop_map(Value::Date),
        "[a-z]{0,8}".prop_map(Value::str),
    ]
}

fn h(v: &Value) -> u64 {
    let mut s = DefaultHasher::new();
    v.hash(&mut s);
    s.finish()
}

proptest! {
    #[test]
    fn total_order_is_antisymmetric(a in arb_value(), b in arb_value()) {
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn total_order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.total_cmp(y));
        prop_assert!(v[0].total_cmp(&v[1]) != Ordering::Greater);
        prop_assert!(v[1].total_cmp(&v[2]) != Ordering::Greater);
        prop_assert!(v[0].total_cmp(&v[2]) != Ordering::Greater);
    }

    #[test]
    fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(h(&a), h(&b), "{} == {} but hashes differ", a, b);
        }
    }

    #[test]
    fn sql_cmp_agrees_with_total_order_without_nulls(a in arb_value(), b in arb_value()) {
        // Where SQL comparison is defined and same-class, it must agree
        // with the total order (numerics cross-compare in both).
        if let Some(ord) = a.sql_cmp(&b) {
            // Strings/bools/dates compare within class; numerics across.
            let same_class = matches!(
                (&a, &b),
                (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_))
                    | (Value::Str(_), Value::Str(_))
                    | (Value::Bool(_), Value::Bool(_))
                    | (Value::Date(_), Value::Date(_))
            );
            if same_class {
                prop_assert_eq!(ord, a.total_cmp(&b));
            }
        }
    }

    #[test]
    fn width_is_positive(a in arb_value()) {
        prop_assert!(a.width() >= 1);
    }
}
