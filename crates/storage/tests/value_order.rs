//! Property tests for `Value`'s total order and hash — the contracts hash
//! joins, group-bys and sorts rely on. Driven by the deterministic in-repo
//! generator (`cse_storage::testkit::TestRng`).

use cse_storage::testkit::TestRng;
use cse_storage::Value;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

const CASES: usize = 2000;

fn gen_value(rng: &mut TestRng) -> Value {
    match rng.range_usize(0, 6) {
        0 => Value::Null,
        1 => Value::Bool(rng.chance(0.5)),
        2 => Value::Int(rng.range_i64(-1000, 1000)),
        3 => Value::Float(rng.range_i64(-1000, 1000) as f64 / 4.0),
        4 => Value::Date(rng.range_i64(-40_000, 40_000) as i32),
        _ => Value::str(rng.small_string(8)),
    }
}

fn h(v: &Value) -> u64 {
    let mut s = DefaultHasher::new();
    v.hash(&mut s);
    s.finish()
}

#[test]
fn total_order_is_antisymmetric() {
    let mut rng = TestRng::new(0x51);
    for _ in 0..CASES {
        let a = gen_value(&mut rng);
        let b = gen_value(&mut rng);
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        assert_eq!(ab, ba.reverse());
    }
}

#[test]
fn total_order_is_transitive() {
    let mut rng = TestRng::new(0x52);
    for _ in 0..CASES {
        let mut v = [
            gen_value(&mut rng),
            gen_value(&mut rng),
            gen_value(&mut rng),
        ];
        v.sort_by(|x, y| x.total_cmp(y));
        assert!(v[0].total_cmp(&v[1]) != Ordering::Greater);
        assert!(v[1].total_cmp(&v[2]) != Ordering::Greater);
        assert!(v[0].total_cmp(&v[2]) != Ordering::Greater);
    }
}

#[test]
fn eq_implies_same_hash() {
    let mut rng = TestRng::new(0x53);
    for _ in 0..CASES {
        // Bias toward equality by drawing from a narrow domain too.
        let (a, b) = if rng.chance(0.5) {
            (gen_value(&mut rng), gen_value(&mut rng))
        } else {
            (
                Value::Int(rng.range_i64(-2, 2)),
                Value::Int(rng.range_i64(-2, 2)),
            )
        };
        if a == b {
            assert_eq!(h(&a), h(&b), "{a} == {b} but hashes differ");
        }
    }
}

#[test]
fn sql_cmp_agrees_with_total_order_without_nulls() {
    // Where SQL comparison is defined and same-class, it must agree
    // with the total order (numerics cross-compare in both).
    let mut rng = TestRng::new(0x54);
    for _ in 0..CASES {
        let a = gen_value(&mut rng);
        let b = gen_value(&mut rng);
        if let Some(ord) = a.sql_cmp(&b) {
            // Strings/bools/dates compare within class; numerics across.
            let same_class = matches!(
                (&a, &b),
                (
                    Value::Int(_) | Value::Float(_),
                    Value::Int(_) | Value::Float(_)
                ) | (Value::Str(_), Value::Str(_))
                    | (Value::Bool(_), Value::Bool(_))
                    | (Value::Date(_), Value::Date(_))
            );
            if same_class {
                assert_eq!(ord, a.total_cmp(&b));
            }
        }
    }
}

#[test]
fn width_is_positive() {
    let mut rng = TestRng::new(0x55);
    for _ in 0..CASES {
        assert!(gen_value(&mut rng).width() >= 1);
    }
}
