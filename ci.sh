#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# qlint gate: the static analyzer's output over the committed SQL corpus
# must match the golden files byte-for-byte (rule ids, messages, spans),
# and deny mode must accept the clean corpus and reject the findings one.
echo "==> qlint corpus (golden files + deny gate)"
QLINT=(cargo run -q --release --bin qlint --)
for f in tests/corpus/*.sql; do
  "${QLINT[@]}" --sf 0.001 "$f" | diff -u "${f%.sql}.golden" - \
    || { echo "qlint output drifted for $f"; exit 1; }
done
"${QLINT[@]}" --sf 0.001 --deny tests/corpus/clean.sql >/dev/null
if "${QLINT[@]}" --sf 0.001 --deny tests/corpus/findings.sql >/dev/null 2>&1; then
  echo "qlint --deny failed to reject tests/corpus/findings.sql"
  exit 1
fi

# Fault-injection seed matrix: the adversarial robustness suite must hold
# for every seed, not just the default. Each seed reshuffles which scans /
# spools fail under probabilistic injection; correctness and event
# reporting are asserted regardless.
for seed in 1 7 42; do
  echo "==> robustness suite (CSE_FAIL_SEED=$seed)"
  CSE_FAIL_SEED=$seed cargo test -q --test robustness
done

echo "==> ci.sh: all green"
