#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# qlint gate: the static analyzer's output over the committed SQL corpus
# must match the golden files byte-for-byte (rule ids, messages, spans),
# and deny mode must accept the clean corpus and reject the findings one.
echo "==> qlint corpus (golden files + deny gate)"
QLINT=(cargo run -q --release --bin qlint --)
for f in tests/corpus/*.sql; do
  "${QLINT[@]}" --sf 0.001 "$f" | diff -u "${f%.sql}.golden" - \
    || { echo "qlint output drifted for $f"; exit 1; }
done
"${QLINT[@]}" --sf 0.001 --deny tests/corpus/clean.sql >/dev/null
if "${QLINT[@]}" --sf 0.001 --deny tests/corpus/findings.sql >/dev/null 2>&1; then
  echo "qlint --deny failed to reject tests/corpus/findings.sql"
  exit 1
fi

# Fault-injection seed matrix: the adversarial robustness suite and the
# concurrent serving stress suite must hold for every seed, not just the
# default. Each seed reshuffles which scans / spools / worker slots fail
# under probabilistic injection; correctness, terminal outcomes, and
# cross-worker-count determinism are asserted regardless.
for seed in 1 7 42; do
  echo "==> robustness suite (CSE_FAIL_SEED=$seed)"
  CSE_FAIL_SEED=$seed cargo test -q --test robustness
  echo "==> serving stress suite (CSE_FAIL_SEED=$seed)"
  CSE_FAIL_SEED=$seed cargo test -q --test serve_stress
done

# qserve smoke: every corpus request must reach a terminal outcome
# through the concurrent server. The findings corpus carries statements
# qlint flags but the engine still executes, so it must fully complete;
# the recovery corpus opens with a deliberate syntax error, which must be
# classified PLAN_REJECTED (no retries) while the rest of the file is
# still served.
echo "==> qserve smoke (tests/corpus/*.sql)"
QSERVE=(cargo run -q --release --bin qserve --)
for f in tests/corpus/clean.sql tests/corpus/findings.sql; do
  "${QSERVE[@]}" --sf 0.001 --workers 4 --block "$f" >/dev/null \
    || { echo "qserve rejected a request from $f"; exit 1; }
done
if out=$("${QSERVE[@]}" --sf 0.001 --workers 4 --block tests/corpus/recovery.sql); then
  echo "qserve accepted the broken statement in recovery.sql"
  exit 1
fi
grep -q "PLAN_REJECTED" <<<"$out" \
  || { echo "recovery.sql rejection missing PLAN_REJECTED: $out"; exit 1; }
grep -q "done" <<<"$out" \
  || { echo "recovery.sql healthy request was not served: $out"; exit 1; }

echo "==> ci.sh: all green"
