#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# qlint gate: the static analyzer's output over the committed SQL corpus
# must match the golden files byte-for-byte (rule ids, messages, spans),
# and deny mode must accept the clean corpus and reject the findings one.
echo "==> qlint corpus (golden files + deny gate)"
QLINT=(cargo run -q --release --bin qlint --)
for f in tests/corpus/*.sql; do
  "${QLINT[@]}" --sf 0.001 "$f" | diff -u "${f%.sql}.golden" - \
    || { echo "qlint output drifted for $f"; exit 1; }
done
"${QLINT[@]}" --sf 0.001 --deny tests/corpus/clean.sql >/dev/null
if "${QLINT[@]}" --sf 0.001 --deny tests/corpus/findings.sql >/dev/null 2>&1; then
  echo "qlint --deny failed to reject tests/corpus/findings.sql"
  exit 1
fi

# qconc gate: the lock-discipline analyzer over the serving-layer crates.
# The full report (including which findings the allowlist covered, and
# why) must match the golden file byte-for-byte, and deny mode must pass —
# i.e. every finding is either fixed or carries a checked-in justification,
# and no allowlist entry is stale.
echo "==> qconc (lock discipline: golden file + deny gate)"
cargo run -q --release --bin qconc | diff -u tests/corpus/qconc.golden - \
  || { echo "qconc output drifted (regenerate tests/corpus/qconc.golden if intended)"; exit 1; }
cargo run -q --release --bin qconc -- --deny >/dev/null

# The breaker is the serving layer's hottest lock (every admit() crosses
# it); it must stay clean under the discipline rules with NO allowlist
# entries at all — a regression that needs a justification here is a
# regression, full stop.
echo "==> qconc (breaker: allowlist-free)"
cargo run -q --release --bin qconc -- --deny --allow /dev/null \
  crates/serve/src/breaker.rs >/dev/null

# qaudit gate: panic-path + contract-drift audits over every crate. Same
# contract as qconc: the full report (panic-surface summary, vocabulary
# counts, allowlist coverage) must match the golden byte-for-byte, and
# deny mode must pass — zero unjustified hot-reachable panic sites, zero
# contract drift. Note the qconc golden check above doubles as the
# shared-lexer refactor guard: cse-conc now lexes through cse-source,
# and its output must not move.
echo "==> qaudit (panic paths + contracts: golden file + deny gate)"
cargo run -q --release --bin qaudit | diff -u tests/corpus/qaudit.golden - \
  || { echo "qaudit output drifted (regenerate tests/corpus/qaudit.golden if intended)"; exit 1; }
cargo run -q --release --bin qaudit -- --deny >/dev/null

# Stale-allowlist detection must itself be live: an allowlist entry that
# matches nothing has to flip deny mode to failure.
echo "==> qaudit (stale allowlist entry is fatal)"
stale_allow=$(mktemp)
cat qaudit.allow > "$stale_allow"
echo "audit/hot-panic  crates/nonexistent/src/void.rs  nothing  ci stale-entry probe" >> "$stale_allow"
if cargo run -q --release --bin qaudit -- --deny --allow "$stale_allow" >/dev/null 2>&1; then
  rm -f "$stale_allow"
  echo "qaudit --deny accepted a stale allowlist entry"
  exit 1
fi
rm -f "$stale_allow"

# Interleaving explorer: the exhaustive suites over the queue / breaker /
# cancel / memory-governor models run as part of `cargo test` above; the
# deep seeded sampling arm is opt-in because it is slow. Set
# QCONC_SAMPLE=seed[:n] (e.g. QCONC_SAMPLE=7:20000) to run it.
if [[ -n "${QCONC_SAMPLE:-}" ]]; then
  echo "==> qconc deep sampling arm (QCONC_SAMPLE=$QCONC_SAMPLE)"
  QCONC_SAMPLE="$QCONC_SAMPLE" cargo test -q -p cse-conc env_gated_deep_sampling_arm
fi

# The lock-stats instrumentation build must stay green even though the
# default build compiles it out.
echo "==> lock-stats feature build"
cargo build -q --features lock-stats -p cse-bench -p cse-serve -p cse-conc

# Fault-injection seed matrix: the adversarial robustness suite and the
# concurrent serving stress suite must hold for every seed, not just the
# default. Each seed reshuffles which scans / spools / worker slots fail
# under probabilistic injection; correctness, terminal outcomes, and
# cross-worker-count determinism are asserted regardless.
for seed in 1 7 42; do
  echo "==> robustness suite (CSE_FAIL_SEED=$seed)"
  CSE_FAIL_SEED=$seed cargo test -q --test robustness
  echo "==> serving stress suite (CSE_FAIL_SEED=$seed)"
  CSE_FAIL_SEED=$seed cargo test -q --test serve_stress
  echo "==> memory storm suite (CSE_FAIL_SEED=$seed)"
  CSE_FAIL_SEED=$seed cargo test -q --test memory_storm
done

# Overload smoke: a 500-request open-loop run at 1x/2x/4x saturation.
# The harness itself asserts the robustness contract — every request
# reaches exactly one terminal outcome, every rejection carries a
# load-shedding reason code (SHED_MEMORY / SHED_QUEUE_FULL /
# REQ_DEADLINE), zero worker panics — so a nonzero exit here means the
# contract broke. The JSON goes to a scratch path: the committed
# BENCH_overload.json is regenerated deliberately, not by CI.
echo "==> overload smoke (500 requests, open loop)"
overload_out=$(mktemp)
cargo run -q --release -p cse-bench --bin report -- overload \
  --sf 0.002 --requests 500 --out "$overload_out" >/dev/null
grep -q '"multiplier": 4' "$overload_out" \
  || { echo "overload smoke missing the 4x point"; exit 1; }
rm -f "$overload_out"

# qserve smoke: every corpus request must reach a terminal outcome
# through the concurrent server. The findings corpus carries statements
# qlint flags but the engine still executes, so it must fully complete;
# the recovery corpus opens with a deliberate syntax error, which must be
# classified PLAN_REJECTED (no retries) while the rest of the file is
# still served.
echo "==> qserve smoke (tests/corpus/*.sql)"
QSERVE=(cargo run -q --release --bin qserve --)
for f in tests/corpus/clean.sql tests/corpus/findings.sql; do
  "${QSERVE[@]}" --sf 0.001 --workers 4 --block "$f" >/dev/null \
    || { echo "qserve rejected a request from $f"; exit 1; }
done
if out=$("${QSERVE[@]}" --sf 0.001 --workers 4 --block tests/corpus/recovery.sql); then
  echo "qserve accepted the broken statement in recovery.sql"
  exit 1
fi
grep -q "PLAN_REJECTED" <<<"$out" \
  || { echo "recovery.sql rejection missing PLAN_REJECTED: $out"; exit 1; }
grep -q "done" <<<"$out" \
  || { echo "recovery.sql healthy request was not served: $out"; exit 1; }

# Durability smoke: crash qserve at the WAL append failpoint while it
# seeds a fresh data directory, then restart against the same directory
# and require a clean recovery + serve. Swept over three seeds. The
# deeper per-failpoint × per-seed crash matrix runs in `cargo test`
# (tests/recovery_storm.rs); this gate proves the binary wiring.
echo "==> recovery smoke (crash at wal.append, restart, verify)"
for seed in 1 7 42; do
  data_dir=$(mktemp -d)
  if CSE_FAIL="wal.append:1.0:$seed" "${QSERVE[@]}" --sf 0.001 --data-dir "$data_dir" \
      tests/corpus/clean.sql >/dev/null 2>&1; then
    echo "qserve survived a certain wal.append fault (seed $seed)"
    exit 1
  fi
  restart=$("${QSERVE[@]}" --sf 0.001 --data-dir "$data_dir" tests/corpus/clean.sql 2>&1 >/dev/null) \
    || { echo "restart after wal.append crash failed (seed $seed): $restart"; exit 1; }
  rm -rf "$data_dir"
done

# Negative probe: corruption inside the durable WAL prefix must be
# detected at recovery and reported with its stable reason code — a
# server that silently serves a lossy catalog is the failure mode this
# whole layer exists to prevent.
echo "==> recovery negative probe (corrupted WAL checksum is fatal and reported)"
data_dir=$(mktemp -d)
"${QSERVE[@]}" --sf 0.001 --data-dir "$data_dir" tests/corpus/clean.sql >/dev/null 2>&1 \
  || { echo "durable qserve baseline run failed"; exit 1; }
# Flip one bit inside the first WAL frame's payload.
printf '\x01' | dd of="$data_dir/wal" bs=1 seek=20 count=1 conv=notrunc status=none
if out=$("${QSERVE[@]}" --sf 0.001 --data-dir "$data_dir" tests/corpus/clean.sql 2>&1 >/dev/null); then
  echo "qserve served a catalog recovered from a corrupted WAL"
  exit 1
fi
grep -q "WAL_CORRUPT_FRAME" <<<"$out" \
  || { echo "corrupted WAL rejection missing WAL_CORRUPT_FRAME: $out"; exit 1; }
rm -rf "$data_dir"

echo "==> ci.sh: all green"
