#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# Fault-injection seed matrix: the adversarial robustness suite must hold
# for every seed, not just the default. Each seed reshuffles which scans /
# spools fail under probabilistic injection; correctness and event
# reporting are asserted regardless.
for seed in 1 7 42; do
  echo "==> robustness suite (CSE_FAIL_SEED=$seed)"
  CSE_FAIL_SEED=$seed cargo test -q --test robustness
done

echo "==> ci.sh: all green"
