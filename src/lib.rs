//! # similar-subexpr
//!
//! Reproduction of *"Efficient Exploitation of Similar Subexpressions for
//! Query Processing"* (Zhou, Larson, Freytag, Lehner — SIGMOD 2007):
//! a cost-based query-optimization stack that detects similar SPJG
//! subexpressions within a query, across a batch, or across
//! materialized-view maintenance expressions, constructs covering
//! subexpressions (CSEs), and decides — fully cost-based — which ones to
//! spool and share.
//!
//! ## Quickstart
//!
//! ```
//! use similar_subexpr::prelude::*;
//!
//! // A tiny TPC-H instance.
//! let catalog = cse_tpch::generate_catalog(&cse_tpch::TpchConfig::new(0.001));
//!
//! let sql = "
//!   select c_nationkey, sum(l_extendedprice) as le
//!   from customer, orders, lineitem
//!   where c_custkey = o_custkey and o_orderkey = l_orderkey
//!     and c_nationkey < 20
//!   group by c_nationkey;
//!   select c_nationkey, sum(l_quantity) as lq
//!   from customer, orders, lineitem
//!   where c_custkey = o_custkey and o_orderkey = l_orderkey
//!     and c_nationkey < 25
//!   group by c_nationkey;
//! ";
//!
//! let optimized = optimize_sql(&catalog, sql, &CseConfig::default()).unwrap();
//! let engine = Engine::new(&catalog, &optimized.ctx);
//! let out = engine.execute(&optimized.plan).unwrap();
//! assert_eq!(out.results.len(), 2);
//! ```

pub mod session;

pub use cse_algebra as algebra;
pub use cse_conc as conc;
pub use cse_core as core;
pub use cse_cost as cost;
pub use cse_diag as diag;
pub use cse_durable as durable;
pub use cse_exec as exec;
pub use cse_govern as govern;
pub use cse_lint as lint;
pub use cse_memo as memo;
pub use cse_optimizer as optimizer;
pub use cse_serve as serve;
pub use cse_sql as sql;
pub use cse_storage as storage;
pub use cse_tpch as tpch;
pub use cse_verify as verify;

pub use session::{BatchOutcome, Error, Session};

/// The most common imports.
pub mod prelude {
    pub use crate::session::{BatchOutcome, Session};
    pub use cse_core::{
        create_materialized_view, maintain_insert, optimize_sql, CseConfig, CseReport, GenConfig,
        Optimized,
    };
    pub use cse_durable::{DurableCatalog, DurableOptions, FileStore, SimStore};
    pub use cse_exec::{Engine, ExecOutput, ResultSet};
    pub use cse_govern::{
        Budget, CancelToken, DegradationEvent, ExecLimits, FailSpec, FailpointRegistry,
        MemReservation, MemoryGovernor, Pressure, Reason, Rung,
    };
    pub use cse_lint::{lint_batch, LintMode, LintOutcome};
    pub use cse_serve::{
        AdmitPolicy, Outcome, RejectReason, Server, ServerConfig, ServerStats, Ticket,
    };
    pub use cse_storage::{Catalog, Table, Value};
    pub use cse_tpch::{generate_catalog, TpchConfig};
}
