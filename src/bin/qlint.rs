//! `qlint` — file-based front end for the static batch analyzer, built
//! for CI gates and golden-file tests.
//!
//! ```text
//! cargo run --release --bin qlint -- [--sf 0.01] [--deny] file.sql ...
//! ```
//!
//! Each file is analyzed as one batch against a TPC-H catalog. The
//! report is printed to stdout deterministically (one `== file ==`
//! header per file, `clean` when nothing fired). Exit status:
//!
//! - `0` — analyzed everything; without `--deny`, findings are
//!   informational;
//! - `1` — `--deny` was set and at least one file had a
//!   warning-or-worse finding;
//! - `2` — usage error or unreadable file.

use similar_subexpr::prelude::*;

fn main() {
    let mut sf = 0.01f64;
    let mut deny = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sf" => {
                sf = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sf expects a number");
            }
            "--deny" => deny = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}; usage: qlint [--sf N] [--deny] file.sql ...");
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: qlint [--sf N] [--deny] file.sql ...");
        std::process::exit(2);
    }

    let catalog = generate_catalog(&TpchConfig::new(sf));
    let mut denied = false;
    for f in &files {
        let sql = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{f}: {e}");
                std::process::exit(2);
            }
        };
        let out = lint_batch(&catalog, &sql);
        println!("== {f} ==");
        if out.report.is_clean() {
            println!("clean ({} statement(s))", out.statements);
        } else {
            print!("{}", out.report.render_as("lint"));
        }
        if out.denies(LintMode::Deny) {
            denied = true;
            if deny {
                eprintln!("{f}: denied (warning-or-worse findings)");
            }
        }
    }
    if deny && denied {
        std::process::exit(1);
    }
}
