//! `qconc` — the lock-discipline gate for the serving layer.
//!
//! ```text
//! cargo run --release --bin qconc -- [--deny] [--spans] [--allow FILE] [--root DIR] [path ...]
//! ```
//!
//! Scans the concurrency-relevant crates (`crates/{serve,govern,exec,core}/src`
//! and `src/`) with the token-level analyzer in `cse-conc`, filters the
//! findings through the checked-in allowlist (`qconc.allow` at the root by
//! default), and prints a deterministic report. Without `--spans` the
//! output omits byte offsets, so the golden file stays stable under
//! unrelated edits; entries in the allowlist are keyed by
//! `(rule, file suffix, function)` for the same reason. Allowlist entries
//! that no longer match anything are reported as `conc/stale-allow`.
//!
//! Exit status:
//!
//! - `0` — scanned everything; without `--deny`, findings are informational;
//! - `1` — `--deny` was set and at least one non-allowlisted finding
//!   (or stale allowlist entry) survived;
//! - `2` — usage error or unreadable file.

use cse_conc::discipline::DisciplineConfig;
use cse_conc::{apply_allowlist, parse_allowlist, scan_file, stale_finding, Finding};
use cse_diag::{Report, Severity};
use cse_source::collect_rs;
use std::path::{Path, PathBuf};

/// Directories scanned when no explicit paths are given, relative to
/// `--root`: the crates that share locks with the server, plus the
/// binaries.
const DEFAULT_SCAN: &[&str] = &[
    "crates/serve/src",
    "crates/govern/src",
    "crates/exec/src",
    "crates/core/src",
    "src",
];

fn main() {
    let mut deny = false;
    let mut spans = false;
    let mut allow_path: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--spans" => spans = true,
            "--allow" => {
                allow_path = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--allow expects a path")),
                ));
            }
            "--root" => {
                root = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--root expects a path")),
                );
            }
            flag if flag.starts_with("--") => {
                usage(&format!("unknown flag {flag}"));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    // Collect the files to scan, sorted for deterministic output.
    let mut files: Vec<PathBuf> = Vec::new();
    if paths.is_empty() {
        for dir in DEFAULT_SCAN {
            collect_rs(&root.join(dir), &mut files);
        }
    } else {
        for p in &paths {
            if p.is_dir() {
                collect_rs(p, &mut files);
            } else {
                files.push(p.clone());
            }
        }
    }
    files.sort();
    files.dedup();
    if files.is_empty() {
        eprintln!("qconc: nothing to scan under {}", root.display());
        std::process::exit(2);
    }

    let allow_file = allow_path.unwrap_or_else(|| root.join("qconc.allow"));
    let entries = if allow_file.exists() {
        let text = read_or_die(&allow_file);
        match parse_allowlist(&text) {
            Ok(e) => e,
            Err(msg) => {
                eprintln!("qconc: {}: {msg}", allow_file.display());
                std::process::exit(2);
            }
        }
    } else {
        Vec::new()
    };

    let cfg = DisciplineConfig::repo_default();
    let mut findings: Vec<Finding> = Vec::new();
    for f in &files {
        let src = read_or_die(f);
        // Report paths relative to the root so the golden file does not
        // depend on where the checkout lives.
        let rel = f
            .strip_prefix(&root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_file(&rel, &src, &cfg));
    }

    let filtered = apply_allowlist(findings, &entries);
    let mut report = Report::new();
    for f in &filtered.denied {
        push(&mut report, f, spans);
    }
    for e in &filtered.stale {
        push(&mut report, &stale_finding(e), spans);
    }

    println!("== qconc: {} file(s) scanned ==", files.len());
    let rendered = report.render_as("qconc");
    if rendered.ends_with('\n') {
        print!("{rendered}");
    } else {
        println!("{rendered}");
    }
    if !filtered.allowed.is_empty() {
        println!(
            "allowed: {} finding(s) via {}",
            filtered.allowed.len(),
            allow_file.display()
        );
        for (f, justification) in &filtered.allowed {
            println!("  [{}] {}: {justification}", f.rule, f.path());
        }
    }

    if deny && !report.is_clean() {
        eprintln!(
            "qconc: denied ({} finding(s) not covered by the allowlist)",
            report.diagnostics.len()
        );
        std::process::exit(1);
    }
}

fn push(report: &mut Report, f: &Finding, spans: bool) {
    match (f.severity, spans) {
        (Severity::Error, true) => report.error_at(f.rule, f.path(), &f.message, f.span),
        (Severity::Error, false) => report.error(f.rule, f.path(), &f.message),
        (Severity::Note, true) => report.note_at(f.rule, f.path(), &f.message, f.span),
        (Severity::Note, false) => report.note(f.rule, f.path(), &f.message),
        (_, true) => report.warn_at(f.rule, f.path(), &f.message, f.span),
        (_, false) => report.warn(f.rule, f.path(), &f.message),
    }
}

fn read_or_die(p: &Path) -> String {
    std::fs::read_to_string(p).unwrap_or_else(|e| {
        eprintln!("qconc: {}: {e}", p.display());
        std::process::exit(2);
    })
}

fn usage(msg: &str) -> ! {
    eprintln!("qconc: {msg}");
    eprintln!("usage: qconc [--deny] [--spans] [--allow FILE] [--root DIR] [path ...]");
    std::process::exit(2)
}
