//! `qsql` — a small interactive shell over the similar-subexpression
//! engine, preloaded with a TPC-H instance.
//!
//! ```text
//! cargo run --release --bin qsql [-- --sf 0.01] [--verify] [--lint[=deny]]
//!     [--budget-ms N] [--no-cse-fallback-only] [--fail <site>:<prob>[:<seed>]]
//!
//! qsql> select c_mktsegment, count(*) as n from customer group by c_mktsegment;
//! qsql> :explain select ... ;
//! qsql> :tables
//! qsql> :quit
//! ```
//!
//! Statements may span lines; a trailing `;` submits. A batch of several
//! `;`-separated statements is optimized *together*, so similar
//! subexpressions across them are detected and shared — try pasting the
//! README's two-query batch.

use similar_subexpr::prelude::*;
use std::io::{BufRead, Write};

fn main() {
    let mut sf = 0.01f64;
    let mut verify = false;
    let mut lint = LintMode::Off;
    let mut budget_ms: Option<u64> = None;
    let mut fallback_only = false;
    let mut fail_specs: Vec<FailSpec> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sf" => {
                sf = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sf expects a number");
            }
            // Run the cse-verify invariant passes on every statement (on by
            // default in debug builds; this forces them on in release).
            "--verify" => verify = true,
            // Run the qlint static analyzer over every batch. `--lint`
            // reports diagnostics and feeds facts to the optimizer;
            // `--lint=deny` additionally rejects any batch with a
            // warning-or-worse finding (the CI gate mode).
            a if a == "--lint" || a.starts_with("--lint=") => {
                let mode = a.strip_prefix("--lint=").unwrap_or("warn");
                lint = match mode.parse() {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                };
            }
            // Optimization budget: wall-clock deadline for the CSE phase.
            // A tripped budget degrades (full → capped → baseline) and
            // reports the downgrade; it never fails the query.
            "--budget-ms" => {
                budget_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--budget-ms expects an integer"),
                );
            }
            // Skip the CSE phase outright and report it as OPT_FORCED.
            "--no-cse-fallback-only" => fallback_only = true,
            // Arm deterministic failpoints (repeatable, full CSE_FAIL
            // grammar): --fail spool.materialize:1.0:42
            "--fail" => {
                let spec = args.next().expect("--fail expects site:prob[:seed]");
                match similar_subexpr::govern::parse_fail_specs(&spec) {
                    Ok(s) => fail_specs.extend(s),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: qsql [--sf N] [--verify] [--lint[=deny]] \
                     [--budget-ms N] [--no-cse-fallback-only] [--fail site:prob[:seed]]"
                );
                std::process::exit(2);
            }
        }
    }
    eprintln!("loading TPC-H at SF={sf} ...");
    let defaults = CseConfig::default();
    let mut config = CseConfig {
        verify: verify || defaults.verify,
        fallback_only,
        lint,
        ..defaults
    };
    if let Some(ms) = budget_ms {
        config.budget = Budget::with_time_ms(ms);
    }
    for s in fail_specs {
        config.failpoints.arm(s);
    }
    let session = Session::with_config(generate_catalog(&TpchConfig::new(sf)), config);
    eprintln!("ready. end statements with ';', :help for commands.");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with(':') {
            if !command(&session, trimmed) {
                break;
            }
            prompt(&buffer);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if trimmed.ends_with(';') {
            run(&session, buffer.trim());
            buffer.clear();
        }
        prompt(&buffer);
    }
}

fn prompt(buffer: &str) {
    if buffer.is_empty() {
        print!("qsql> ");
    } else {
        print!("  ..> ");
    }
    let _ = std::io::stdout().flush();
}

/// Returns false to quit.
fn command(session: &Session, cmd: &str) -> bool {
    let (head, rest) = match cmd.split_once(' ') {
        Some((h, r)) => (h, r.trim()),
        None => (cmd, ""),
    };
    match head {
        ":quit" | ":q" | ":exit" => return false,
        ":help" => {
            println!(
                ":explain <sql>;   show the chosen plan and spools\n\
                 :lint <sql>;      run the static analyzer without executing\n\
                 :tables           list catalog tables\n\
                 :quit             leave"
            );
        }
        ":tables" => {
            let mut names: Vec<&str> = session.catalog().table_names().collect();
            names.sort();
            for n in names {
                let t = session.catalog().table(n).expect("listed table");
                println!("{n}: {} rows {}", t.row_count(), t.schema());
            }
        }
        ":explain" => match session.explain(rest.trim_end_matches(';')) {
            Ok(s) => println!("{s}"),
            Err(e) => eprintln!("{e}"),
        },
        ":lint" => {
            let out = session.lint_batch(rest);
            print!("{}", out.report.render_as("lint"));
            if out.report.is_clean() {
                println!();
            }
        }
        other => eprintln!("unknown command {other}; try :help"),
    }
    true
}

fn run(session: &Session, sql: &str) {
    let started = std::time::Instant::now();
    match session.query(sql) {
        Ok(out) => {
            for rs in &out.results {
                println!("{}", render(rs));
            }
            // Degradations (budget trips, injected faults, recoveries) go
            // to stderr so results stay machine-consumable on stdout.
            for ev in &out.events {
                eprintln!("-- degraded: {ev}");
            }
            // Lint diagnostics likewise go to stderr.
            if let Some(l) = &out.report.lint {
                if !l.is_clean() {
                    eprint!("{}", l.render_as("-- lint"));
                }
            }
            let spools = out.metrics.spool_reads.len();
            let verified = match &out.report.verification {
                Some(v) => format!("; verified ({} warning(s))", v.diagnostics.len()),
                None => String::new(),
            };
            println!(
                "-- {} statement(s) in {:?}; est. cost {:.1} (baseline {:.1}); {} shared spool(s){}",
                out.results.len(),
                started.elapsed(),
                out.report.final_cost,
                out.report.baseline_cost,
                spools,
                verified
            );
        }
        Err(e) => eprintln!("{e}"),
    }
}

/// Fixed-width text table, capped at 40 rows.
fn render(rs: &ResultSet) -> String {
    const MAX_ROWS: usize = 40;
    let mut widths: Vec<usize> = rs.columns.iter().map(|c| c.len()).collect();
    let shown = rs.rows.iter().take(MAX_ROWS);
    let cells: Vec<Vec<String>> = shown
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut out = String::new();
    let header: Vec<String> = rs
        .columns
        .iter()
        .zip(&widths)
        .map(|(c, w)| format!("{c:<w$}"))
        .collect();
    out.push_str(&header.join(" | "));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-"),
    );
    for row in &cells {
        out.push('\n');
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        out.push_str(&line.join(" | "));
    }
    if rs.rows.len() > MAX_ROWS {
        out.push_str(&format!("\n... ({} rows total)", rs.rows.len()));
    }
    out
}
