//! `qserve` — drive the concurrent batch server from the command line,
//! preloaded with a TPC-H instance.
//!
//! ```text
//! cargo run --release --bin qserve -- [--sf 0.01] [--workers N] [--queue N]
//!     [--block] [--deadline-ms N] [--retries N] [--lenient]
//!     [--mem-budget BYTES[k|m|g]] [--arrival-rps N]
//!     [--fail <site>:<prob>[:<seed>]] [file.sql ...]
//! ```
//!
//! Each input file (or stdin when no files are given) is split into
//! *requests* on blank lines; each request is a batch of `;`-separated
//! statements that is optimized **together**, so similar subexpressions
//! across its statements are detected and shared. All requests are
//! submitted up front and served concurrently by the worker pool.
//!
//! Per-request outcomes go to stdout, one line each:
//!
//! ```text
//! req 3: done 2 stmt(s) [14 rows] rung=full-cse retries=0 in 11.2ms
//! req 7: rejected [EXEC_FAULT] retries exhausted (2): injected fault ...
//! ```
//!
//! The final server counters (completed/shed/retries/breaker) go to
//! stderr, keeping stdout machine-consumable.

use similar_subexpr::prelude::*;
use std::io::Read as _;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut sf = 0.01f64;
    let mut workers = 4usize;
    let mut queue = 64usize;
    let mut admit = AdmitPolicy::Shed;
    let mut deadline_ms: Option<u64> = None;
    let mut retries = 2u32;
    let mut strict = true;
    let mut mem_budget: Option<usize> = None;
    let mut arrival_rps: Option<f64> = None;
    let mut fail_specs: Vec<FailSpec> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sf" => {
                sf = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sf expects a number");
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers expects an integer");
            }
            "--queue" => {
                queue = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queue expects an integer");
            }
            // Block submitters on a full queue instead of shedding.
            "--block" => admit = AdmitPolicy::Block,
            // Per-attempt watchdog deadline.
            "--deadline-ms" => {
                deadline_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--deadline-ms expects an integer"),
                );
            }
            "--retries" => {
                retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--retries expects an integer");
            }
            // Recover transient faults inside the engine (single-session
            // behaviour) instead of retrying at the serving layer.
            "--lenient" => strict = false,
            // Global memory budget (bytes, k/m/g suffixes); enables the
            // memory governor: reservations, pressure ladder, SHED_MEMORY.
            "--mem-budget" => {
                let v = args.next().expect("--mem-budget expects bytes[k|m|g]");
                mem_budget = Some(parse_bytes(&v).unwrap_or_else(|| {
                    eprintln!("--mem-budget: cannot parse {v:?} (expect e.g. 64m, 512k, 8388608)");
                    std::process::exit(2);
                }));
            }
            // Open-loop submission: Poisson arrivals at this rate instead
            // of submitting every request up front.
            "--arrival-rps" => {
                arrival_rps = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|r: &f64| *r > 0.0)
                        .expect("--arrival-rps expects a positive number"),
                );
            }
            // Full CSE_FAIL grammar: comma-separated site:prob[:seed]
            // specs, unknown sites rejected unless `allow-unknown` leads.
            "--fail" => {
                let spec = args.next().expect("--fail expects site:prob[:seed]");
                match similar_subexpr::govern::parse_fail_specs(&spec) {
                    Ok(s) => fail_specs.extend(s),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!(
                    "unknown flag {other}; usage: qserve [--sf N] [--workers N] [--queue N] \
                     [--block] [--deadline-ms N] [--retries N] [--lenient] \
                     [--mem-budget BYTES[k|m|g]] [--arrival-rps N] \
                     [--fail site:prob[:seed]] [file.sql ...]"
                );
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
    }

    let requests = read_requests(&files);
    if requests.is_empty() {
        eprintln!("no requests (empty input)");
        return;
    }

    eprintln!("loading TPC-H at SF={sf} ...");
    let catalog = Arc::new(generate_catalog(&TpchConfig::new(sf)));
    let mut cse = CseConfig::default();
    for s in fail_specs {
        cse.failpoints.arm(s);
    }
    let config = ServerConfig {
        workers,
        queue_capacity: queue,
        admit,
        deadline: deadline_ms.map(Duration::from_millis),
        max_retries: retries,
        strict_faults: strict,
        mem_budget,
        cse,
        ..ServerConfig::default()
    };
    let mut server = Server::new(catalog, config);
    eprintln!(
        "serving {} request(s) on {workers} worker(s), queue={queue}{}{} ...",
        requests.len(),
        match mem_budget {
            Some(b) => format!(", mem-budget={b}B"),
            None => String::new(),
        },
        match arrival_rps {
            Some(r) => format!(", arrivals={r}/s"),
            None => String::new(),
        }
    );

    // Deterministic Poisson pacing for --arrival-rps (exponential
    // inter-arrival times off the testkit PRNG, seed fixed).
    let mut rng = similar_subexpr::storage::testkit::TestRng::new(42);
    let started = std::time::Instant::now();
    let mut next_at = Duration::ZERO;
    let mut tickets = Vec::new();
    for sql in &requests {
        if let Some(rate) = arrival_rps {
            let u = rng.range_f64(0.0, 1.0).min(0.999_999);
            next_at += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
            let now = started.elapsed();
            if next_at > now {
                std::thread::sleep(next_at - now);
            }
        }
        match server.submit(sql) {
            Ok(t) => tickets.push(Ok(t)),
            Err(r) => tickets.push(Err(r)),
        }
    }
    let mut failed = 0usize;
    for t in tickets {
        let outcome = match t {
            Ok(ticket) => ticket.wait(),
            Err(r) => Outcome::Rejected(r),
        };
        match outcome {
            Outcome::Done(reply) => {
                let rows: usize = reply.results.iter().map(|r| r.rows.len()).sum();
                println!(
                    "req {}: done {} stmt(s) [{} rows] rung={} retries={} in {:.1?}",
                    reply.id,
                    reply.results.len(),
                    rows,
                    reply.rung.as_str(),
                    reply.retries,
                    reply.latency
                );
                for ev in &reply.events {
                    eprintln!("-- req {} degraded: {ev}", reply.id);
                }
            }
            Outcome::Rejected(r) => {
                failed += 1;
                println!(
                    "req {}: rejected [{}] {} (retries={})",
                    r.id,
                    r.reason.code(),
                    r.detail,
                    r.retries
                );
            }
        }
    }
    let governor = server.memory_governor().cloned();
    let stats = server.drain();
    // Report the pool after drain, once every worker has released its
    // grants — a nonzero figure here is a leak, not an in-flight request.
    if let Some(gov) = governor {
        eprintln!(
            "-- memory pool: budget {}B, reserved {}B, pressure {}",
            gov.budget(),
            gov.reserved(),
            gov.pressure()
        );
    }
    eprintln!(
        "-- served {}/{} (degraded {}), rejected {} (shed {}, shed-memory {}), retries {}, \
         breaker: {} (trips {}, probes {}, baseline-served {})",
        stats.completed,
        stats.submitted,
        stats.degraded,
        stats.rejected,
        stats.shed,
        stats.shed_memory,
        stats.retries,
        stats.breaker.state.as_str(),
        stats.breaker.trips,
        stats.breaker.probes,
        stats.breaker.baseline_served
    );
    if failed > 0 {
        std::process::exit(1);
    }
}

/// Parse a byte count with an optional k/m/g suffix (binary multiples).
fn parse_bytes(s: &str) -> Option<usize> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mult) = match t.strip_suffix(['k', 'm', 'g']) {
        Some(d) => match t.as_bytes()[t.len() - 1] {
            b'k' => (d, 1usize << 10),
            b'm' => (d, 1 << 20),
            _ => (d, 1 << 30),
        },
        None => (t.as_str(), 1),
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

/// Split input into requests on blank lines; `--`-prefixed lines are
/// comments. No files means stdin.
fn read_requests(files: &[String]) -> Vec<String> {
    let mut texts = Vec::new();
    if files.is_empty() {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        texts.push(buf);
    } else {
        for f in files {
            texts.push(std::fs::read_to_string(f).unwrap_or_else(|e| {
                eprintln!("cannot read {f}: {e}");
                std::process::exit(2);
            }));
        }
    }
    let mut requests = Vec::new();
    for text in texts {
        for block in text.split("\n\n") {
            let sql: String = block
                .lines()
                .filter(|l| !l.trim_start().starts_with("--"))
                .collect::<Vec<_>>()
                .join("\n");
            if !sql.trim().is_empty() {
                requests.push(sql);
            }
        }
    }
    requests
}
