//! `qserve` — drive the concurrent batch server from the command line,
//! preloaded with a TPC-H instance.
//!
//! ```text
//! cargo run --release --bin qserve -- [--sf 0.01] [--workers N] [--queue N]
//!     [--block] [--deadline-ms N] [--retries N] [--lenient]
//!     [--mem-budget BYTES[k|m|g]] [--arrival-rps N] [--data-dir DIR]
//!     [--fail <site>:<prob>[:<seed>]] [file.sql ...]
//! ```
//!
//! Each input file (or stdin when no files are given) is split into
//! *requests* on blank lines; each request is a batch of `;`-separated
//! statements that is optimized **together**, so similar subexpressions
//! across its statements are detected and shared. All requests are
//! submitted up front and served concurrently by the worker pool.
//!
//! Per-request outcomes go to stdout, one line each:
//!
//! ```text
//! req 3: done 2 stmt(s) [14 rows] rung=full-cse retries=0 in 11.2ms
//! req 7: rejected [EXEC_FAULT] retries exhausted (2): injected fault ...
//! ```
//!
//! The final server counters (completed/shed/retries/breaker) go to
//! stderr, keeping stdout machine-consumable.
//!
//! With `--data-dir DIR` the catalog is durable: mutations are journaled
//! to a checksummed WAL under DIR (group commit), snapshots bound replay,
//! and a restart recovers the catalog from disk — refusing to serve if
//! the recovered state fails verification. SIGINT triggers a clean drain
//! (in-flight requests finish, the WAL is flushed) before the final
//! stats are printed.

use similar_subexpr::durable::snapshot::catalog_as_mutations;
use similar_subexpr::prelude::*;
use similar_subexpr::storage::CatalogMutation;
use std::io::Read as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Set by the SIGINT handler; the submit loop polls it and falls through
/// to the drain path, so ^C produces a flushed WAL and final stats
/// instead of a mid-write kill.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_sig: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

fn install_sigint_handler() {
    // Minimal libc-free signal(2) binding; SIGINT is 2 on every platform
    // this builds on. The handler only flips an atomic flag, which is
    // async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

/// Which table (lower-cased) a mutation creates or depends on, for
/// idempotent seeding: a mutation targeting a table that already survived
/// recovery must not be re-applied.
fn mutation_target(m: &CatalogMutation) -> Option<String> {
    match m {
        CatalogMutation::RegisterTable { table } | CatalogMutation::ReplaceTable { table } => {
            Some(table.name().to_ascii_lowercase())
        }
        CatalogMutation::DropTable { name }
        | CatalogMutation::CreateBtreeIndex { table: name, .. }
        | CatalogMutation::CreateHashIndex { table: name, .. }
        | CatalogMutation::RegisterView { name, .. } => Some(name.to_ascii_lowercase()),
        CatalogMutation::ApplyDelta { .. } => None,
    }
}

fn main() {
    let mut sf = 0.01f64;
    let mut workers = 4usize;
    let mut queue = 64usize;
    let mut admit = AdmitPolicy::Shed;
    let mut deadline_ms: Option<u64> = None;
    let mut retries = 2u32;
    let mut strict = true;
    let mut mem_budget: Option<usize> = None;
    let mut arrival_rps: Option<f64> = None;
    let mut data_dir: Option<String> = None;
    let mut fail_specs: Vec<FailSpec> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sf" => {
                sf = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--sf expects a number");
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers expects an integer");
            }
            "--queue" => {
                queue = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queue expects an integer");
            }
            // Block submitters on a full queue instead of shedding.
            "--block" => admit = AdmitPolicy::Block,
            // Per-attempt watchdog deadline.
            "--deadline-ms" => {
                deadline_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--deadline-ms expects an integer"),
                );
            }
            "--retries" => {
                retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--retries expects an integer");
            }
            // Recover transient faults inside the engine (single-session
            // behaviour) instead of retrying at the serving layer.
            "--lenient" => strict = false,
            // Global memory budget (bytes, k/m/g suffixes); enables the
            // memory governor: reservations, pressure ladder, SHED_MEMORY.
            "--mem-budget" => {
                let v = args.next().expect("--mem-budget expects bytes[k|m|g]");
                mem_budget = Some(parse_bytes(&v).unwrap_or_else(|| {
                    eprintln!("--mem-budget: cannot parse {v:?} (expect e.g. 64m, 512k, 8388608)");
                    std::process::exit(2);
                }));
            }
            // Open-loop submission: Poisson arrivals at this rate instead
            // of submitting every request up front.
            "--arrival-rps" => {
                arrival_rps = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|r: &f64| *r > 0.0)
                        .expect("--arrival-rps expects a positive number"),
                );
            }
            // Durable catalog rooted at this directory: WAL + snapshots,
            // recovered (and verified) on startup.
            "--data-dir" => {
                data_dir = Some(args.next().expect("--data-dir expects a directory"));
            }
            // Full CSE_FAIL grammar: comma-separated site:prob[:seed]
            // specs, unknown sites rejected unless `allow-unknown` leads.
            "--fail" => {
                let spec = args.next().expect("--fail expects site:prob[:seed]");
                match similar_subexpr::govern::parse_fail_specs(&spec) {
                    Ok(s) => fail_specs.extend(s),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            other if other.starts_with("--") => {
                eprintln!(
                    "unknown flag {other}; usage: qserve [--sf N] [--workers N] [--queue N] \
                     [--block] [--deadline-ms N] [--retries N] [--lenient] \
                     [--mem-budget BYTES[k|m|g]] [--arrival-rps N] [--data-dir DIR] \
                     [--fail site:prob[:seed]] [file.sql ...]"
                );
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
    }

    let requests = read_requests(&files);
    if requests.is_empty() {
        eprintln!("no requests (empty input)");
        return;
    }

    install_sigint_handler();

    eprintln!("loading TPC-H at SF={sf} ...");
    let generated = generate_catalog(&TpchConfig::new(sf));
    let mut cse = CseConfig::default();
    for s in fail_specs {
        cse.failpoints.arm(s);
    }

    // With --data-dir, recover the durable catalog from disk and seed any
    // TPC-H tables it does not hold yet through the journal; without it,
    // the generated catalog is served from memory as before.
    let mut durable: Option<Arc<Mutex<DurableCatalog<FileStore>>>> = None;
    let catalog: Arc<Catalog> = match &data_dir {
        None => Arc::new(generated),
        Some(dir) => {
            let store = match FileStore::open(dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("--data-dir {dir}: {e}");
                    std::process::exit(1);
                }
            };
            let had_state = store.has_state();
            let opened =
                DurableCatalog::open(store, DurableOptions::default(), cse.failpoints.clone());
            let (mut dc, info) = match opened {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("recovery of {dir} failed: {e}");
                    std::process::exit(1);
                }
            };
            if had_state {
                eprintln!(
                    "-- recovered {dir}: snapshot lsn {}, replayed {}, skipped {}, tail {}, \
                     verify {}",
                    info.snapshot_lsn,
                    info.replayed,
                    info.skipped,
                    info.tail.code(),
                    if info.verify.is_clean() {
                        "clean".to_string()
                    } else {
                        info.verify.render()
                    }
                );
            }
            let existing: Vec<String> = dc
                .catalog()
                .table_names()
                .map(|n| n.to_ascii_lowercase())
                .collect();
            let mut seeded = 0usize;
            for m in catalog_as_mutations(&generated) {
                if mutation_target(&m).is_some_and(|t| existing.contains(&t)) {
                    continue;
                }
                if let Err(e) = dc.apply(&m) {
                    eprintln!("seeding {dir} failed: {e}");
                    std::process::exit(1);
                }
                seeded += 1;
            }
            // Group commit batches the fsyncs during seeding; one final
            // barrier makes the whole seed durable.
            if let Err(e) = dc.flush() {
                eprintln!("seeding {dir} failed: {e}");
                std::process::exit(1);
            }
            if seeded > 0 {
                eprintln!("-- seeded {seeded} catalog mutation(s) into {dir}");
            }
            let served = Arc::new(dc.catalog().clone());
            durable = Some(Arc::new(Mutex::new(dc)));
            served
        }
    };
    let config = ServerConfig {
        workers,
        queue_capacity: queue,
        admit,
        deadline: deadline_ms.map(Duration::from_millis),
        max_retries: retries,
        strict_faults: strict,
        mem_budget,
        cse,
        ..ServerConfig::default()
    };
    let mut server = Server::new(catalog, config);
    if let Some(dc) = durable.clone() {
        // Flush the journal once the workers have quiesced: everything
        // the server acknowledged is on disk before the process exits.
        server.set_drain_hook(Box::new(move || {
            let mut guard = dc.lock().unwrap_or_else(|p| p.into_inner());
            if let Err(e) = guard.flush() {
                eprintln!("-- drain: WAL flush failed: {e}");
            }
        }));
    }
    eprintln!(
        "serving {} request(s) on {workers} worker(s), queue={queue}{}{} ...",
        requests.len(),
        match mem_budget {
            Some(b) => format!(", mem-budget={b}B"),
            None => String::new(),
        },
        match arrival_rps {
            Some(r) => format!(", arrivals={r}/s"),
            None => String::new(),
        }
    );

    // Deterministic Poisson pacing for --arrival-rps (exponential
    // inter-arrival times off the testkit PRNG, seed fixed).
    let mut rng = similar_subexpr::storage::testkit::TestRng::new(42);
    let started = std::time::Instant::now();
    let mut next_at = Duration::ZERO;
    let mut tickets = Vec::new();
    for sql in &requests {
        if INTERRUPTED.load(Ordering::SeqCst) {
            eprintln!("-- interrupted: stopping submissions, draining ...");
            break;
        }
        if let Some(rate) = arrival_rps {
            let u = rng.range_f64(0.0, 1.0).min(0.999_999);
            next_at += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
            let now = started.elapsed();
            if next_at > now {
                std::thread::sleep(next_at - now);
            }
        }
        match server.submit(sql) {
            Ok(t) => tickets.push(Ok(t)),
            Err(r) => tickets.push(Err(r)),
        }
    }
    let mut failed = 0usize;
    for t in tickets {
        let outcome = match t {
            Ok(ticket) => ticket.wait(),
            Err(r) => Outcome::Rejected(r),
        };
        match outcome {
            Outcome::Done(reply) => {
                let rows: usize = reply.results.iter().map(|r| r.rows.len()).sum();
                println!(
                    "req {}: done {} stmt(s) [{} rows] rung={} retries={} in {:.1?}",
                    reply.id,
                    reply.results.len(),
                    rows,
                    reply.rung.as_str(),
                    reply.retries,
                    reply.latency
                );
                for ev in &reply.events {
                    eprintln!("-- req {} degraded: {ev}", reply.id);
                }
            }
            Outcome::Rejected(r) => {
                failed += 1;
                println!(
                    "req {}: rejected [{}] {} (retries={})",
                    r.id,
                    r.reason.code(),
                    r.detail,
                    r.retries
                );
            }
        }
    }
    let governor = server.memory_governor().cloned();
    let stats = server.drain();
    if let Some(dc) = &durable {
        let guard = dc.lock().unwrap_or_else(|p| p.into_inner());
        eprintln!(
            "-- durable: last lsn {}, snapshot lsn {}, unsynced {}",
            guard.last_lsn(),
            guard.snapshot_lsn(),
            guard.unsynced()
        );
    }
    // Report the pool after drain, once every worker has released its
    // grants — a nonzero figure here is a leak, not an in-flight request.
    if let Some(gov) = governor {
        eprintln!(
            "-- memory pool: budget {}B, reserved {}B, pressure {}",
            gov.budget(),
            gov.reserved(),
            gov.pressure()
        );
    }
    eprintln!(
        "-- served {}/{} (degraded {}), rejected {} (shed {}, shed-memory {}), retries {}, \
         breaker: {} (trips {}, probes {}, baseline-served {})",
        stats.completed,
        stats.submitted,
        stats.degraded,
        stats.rejected,
        stats.shed,
        stats.shed_memory,
        stats.retries,
        stats.breaker.state.as_str(),
        stats.breaker.trips,
        stats.breaker.probes,
        stats.breaker.baseline_served
    );
    if failed > 0 {
        std::process::exit(1);
    }
}

/// Parse a byte count with an optional k/m/g suffix (binary multiples).
fn parse_bytes(s: &str) -> Option<usize> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mult) = match t.strip_suffix(['k', 'm', 'g']) {
        Some(d) => match t.as_bytes()[t.len() - 1] {
            b'k' => (d, 1usize << 10),
            b'm' => (d, 1 << 20),
            _ => (d, 1 << 30),
        },
        None => (t.as_str(), 1),
    };
    digits.parse::<usize>().ok().map(|n| n * mult)
}

/// Split input into requests on blank lines; `--`-prefixed lines are
/// comments. No files means stdin.
fn read_requests(files: &[String]) -> Vec<String> {
    let mut texts = Vec::new();
    if files.is_empty() {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        texts.push(buf);
    } else {
        for f in files {
            texts.push(std::fs::read_to_string(f).unwrap_or_else(|e| {
                eprintln!("cannot read {f}: {e}");
                std::process::exit(2);
            }));
        }
    }
    let mut requests = Vec::new();
    for text in texts {
        for block in text.split("\n\n") {
            let sql: String = block
                .lines()
                .filter(|l| !l.trim_start().starts_with("--"))
                .collect::<Vec<_>>()
                .join("\n");
            if !sql.trim().is_empty() {
                requests.push(sql);
            }
        }
    }
    requests
}
