//! `qaudit` — panic-path & contract-drift gate for the workspace.
//!
//! ```text
//! cargo run --release --bin qaudit -- [--deny] [--spans] [--print-vocab]
//!                                    [--allow FILE] [--root DIR] [path ...]
//! ```
//!
//! Scans every crate source tree (`crates/*/src` and `src/`) with the
//! token-level analyses in `cse-audit`:
//!
//! - the **panic-path audit** floods an approximate call graph from the
//!   serve/exec entry points and reports hot-reachable panic sites
//!   (`audit/hot-panic`, `audit/bare-unwrap`, `audit/index-hot-loop`);
//! - the **contract-drift audit** cross-checks the declared string
//!   vocabularies (reason codes, rule ids, failpoint sites, bench JSON
//!   keys) against `DESIGN.md`, `README.md`, the golden corpus, the
//!   `sites::ALL` registry, and committed `BENCH_*.json` artifacts
//!   (`audit/contract-drift`).
//!
//! Findings are filtered through `qaudit.allow` (same format as
//! `qconc.allow`; stale entries become `audit/stale-allow`). Without
//! `--spans` byte offsets are omitted so the golden file stays stable
//! under unrelated edits. When explicit paths are given, only the
//! panic-path audit runs over them (the contract checks are
//! whole-workspace by nature). `--print-vocab` prints the generated
//! vocabulary reference table (the exact text DESIGN.md must embed) and
//! exits.
//!
//! Exit status:
//!
//! - `0` — scanned everything; without `--deny`, findings are informational;
//! - `1` — `--deny` was set and at least one non-allowlisted finding
//!   (or stale allowlist entry) survived;
//! - `2` — usage error or unreadable file.

use cse_audit::{contract, panic_audit, rules, AuditConfig, Finding};
use cse_diag::{Report, Severity};
use cse_source::{apply_allowlist, collect_rs, parse_allowlist, stale_finding};
use std::path::{Path, PathBuf};

fn main() {
    let mut deny = false;
    let mut spans = false;
    let mut print_vocab = false;
    let mut allow_path: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--spans" => spans = true,
            "--print-vocab" => print_vocab = true,
            "--allow" => {
                allow_path = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--allow expects a path")),
                ));
            }
            "--root" => {
                root = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--root expects a path")),
                );
            }
            flag if flag.starts_with("--") => {
                usage(&format!("unknown flag {flag}"));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    // Collect the files to scan, sorted for deterministic output.
    let explicit = !paths.is_empty();
    let mut files: Vec<PathBuf> = Vec::new();
    if explicit {
        for p in &paths {
            if p.is_dir() {
                collect_rs(p, &mut files);
            } else {
                files.push(p.clone());
            }
        }
    } else {
        let crates = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates) {
            Ok(rd) => rd
                .filter_map(|e| e.ok())
                .map(|e| e.path().join("src"))
                .filter(|p| p.is_dir())
                .collect(),
            Err(_) => Vec::new(),
        };
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir, &mut files);
        }
        collect_rs(&root.join("src"), &mut files);
    }
    files.sort();
    files.dedup();
    if files.is_empty() {
        eprintln!("qaudit: nothing to scan under {}", root.display());
        std::process::exit(2);
    }

    // Pre-read sources with root-relative paths (keeps the golden file
    // independent of where the checkout lives).
    let mut sources: Vec<(String, String)> = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(&root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, read_or_die(f)));
    }

    // Contract vocabulary is extracted from the same sources.
    let mut vocab = contract::Vocabulary::default();
    for (path, text) in &sources {
        contract::extract_source(path, text, &mut vocab);
    }

    if print_vocab {
        print!("{}", contract::render_vocab_table(&vocab));
        return;
    }

    let allow_file = allow_path.unwrap_or_else(|| root.join("qaudit.allow"));
    let entries = if allow_file.exists() {
        let text = read_or_die(&allow_file);
        match parse_allowlist(&text, rules::ALL) {
            Ok(e) => e,
            Err(msg) => {
                eprintln!("qaudit: {}: {msg}", allow_file.display());
                std::process::exit(2);
            }
        }
    } else {
        Vec::new()
    };

    let cfg = AuditConfig::repo_default();
    let (mut findings, summary) = panic_audit(&sources, &cfg);

    if !explicit {
        let inputs = contract::ContractInputs {
            docs: read_optional(&root, &["DESIGN.md", "README.md"]),
            goldens: read_glob(&root.join("tests/corpus"), ".golden"),
            bench_json: read_bench_json(&root),
        };
        findings.extend(contract::check(&vocab, &inputs));
    }

    let filtered = apply_allowlist(findings, &entries);
    let mut report = Report::new();
    for f in &filtered.denied {
        push(&mut report, f, spans);
    }
    for e in &filtered.stale {
        push(
            &mut report,
            &stale_finding(e, "qaudit.allow", rules::STALE_ALLOW),
            spans,
        );
    }

    println!("== qaudit: {} file(s) scanned ==", files.len());
    println!(
        "panic surface: {} site(s) across {} function(s); {} hot-reachable site(s) in {} hot function(s)",
        summary.sites, summary.functions, summary.hot_sites, summary.hot_functions
    );
    println!(
        "contract: {} reason code(s), {} rule id(s), {} failpoint site(s), {} bench key(s)",
        vocab.reason_codes.len(),
        vocab.rule_ids.len(),
        vocab.failpoint_sites.len(),
        vocab.bench_keys.len()
    );
    let rendered = report.render_as("qaudit");
    if rendered.ends_with('\n') {
        print!("{rendered}");
    } else {
        println!("{rendered}");
    }
    if !filtered.allowed.is_empty() {
        println!(
            "allowed: {} finding(s) via {}",
            filtered.allowed.len(),
            allow_file.display()
        );
        for (f, justification) in &filtered.allowed {
            println!("  [{}] {}: {justification}", f.rule, f.path());
        }
    }

    if deny && !report.is_clean() {
        eprintln!(
            "qaudit: denied ({} finding(s) not covered by the allowlist)",
            report.diagnostics.len()
        );
        std::process::exit(1);
    }
}

fn push(report: &mut Report, f: &Finding, spans: bool) {
    match (f.severity, spans) {
        (Severity::Error, true) => report.error_at(f.rule, f.path(), &f.message, f.span),
        (Severity::Error, false) => report.error(f.rule, f.path(), &f.message),
        (Severity::Note, true) => report.note_at(f.rule, f.path(), &f.message, f.span),
        (Severity::Note, false) => report.note(f.rule, f.path(), &f.message),
        (_, true) => report.warn_at(f.rule, f.path(), &f.message, f.span),
        (_, false) => report.warn(f.rule, f.path(), &f.message),
    }
}

/// Read the files that exist among `names` (relative to `root`).
fn read_optional(root: &Path, names: &[&str]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for n in names {
        let p = root.join(n);
        if p.exists() {
            out.push((n.to_string(), read_or_die(&p)));
        }
    }
    out
}

/// Read every file under `dir` whose name ends with `suffix`, sorted.
fn read_glob(dir: &Path, suffix: &str) -> Vec<(String, String)> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.to_string_lossy().ends_with(suffix))
            .collect(),
        Err(_) => Vec::new(),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            let text = read_or_die(&p);
            (format!("tests/corpus/{name}"), text)
        })
        .collect()
}

/// Committed bench artifacts at the repo root: `BENCH_*.json`.
fn read_bench_json(root: &Path) -> Vec<(String, String)> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(root) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .map(|n| {
                        let n = n.to_string_lossy();
                        n.starts_with("BENCH_") && n.ends_with(".json")
                    })
                    .unwrap_or(false)
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            let text = read_or_die(&p);
            (name, text)
        })
        .collect()
}

fn read_or_die(p: &Path) -> String {
    std::fs::read_to_string(p).unwrap_or_else(|e| {
        eprintln!("qaudit: {}: {e}", p.display());
        std::process::exit(2);
    })
}

fn usage(msg: &str) -> ! {
    eprintln!("qaudit: {msg}");
    eprintln!(
        "usage: qaudit [--deny] [--spans] [--print-vocab] [--allow FILE] [--root DIR] [path ...]"
    );
    std::process::exit(2)
}
