//! High-level session API: the entry point a downstream application uses.
//!
//! A [`Session`] owns a catalog and an optimizer configuration and exposes
//! one-call query execution, plan explanation, and materialized-view
//! management — all driving the covering-subexpression pipeline
//! underneath.

use cse_core::{CseConfig, CseReport, MaintenanceReport, Optimized};
use cse_exec::{Engine, ExecMetrics, ResultSet};
use cse_govern::{CancelToken, DegradationEvent};
use cse_storage::{Catalog, Row, Table};
use std::fmt;

/// Errors surfaced by the session API.
#[derive(Debug, Clone)]
pub enum Error {
    /// Parsing, binding or optimization failed.
    Planning(String),
    /// Plan execution failed.
    Execution(String),
    /// Catalog manipulation failed.
    Catalog(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Planning(m) => write!(f, "planning error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result of running a batch: one result set per statement plus what the
/// optimizer and executor did.
#[derive(Debug)]
pub struct BatchOutcome {
    pub results: Vec<ResultSet>,
    pub report: CseReport,
    pub metrics: ExecMetrics,
    /// Every degradation across planning *and* execution: optimizer-side
    /// ladder events (budget trips, panics, forced baseline) followed by
    /// runtime recoveries (injected faults, breached limits).
    pub events: Vec<DegradationEvent>,
}

/// A catalog plus configuration; the main entry point of the library.
pub struct Session {
    catalog: Catalog,
    config: CseConfig,
}

impl Session {
    /// Session over an existing catalog with default configuration
    /// (CSE detection on, heuristics on).
    pub fn new(catalog: Catalog) -> Self {
        Session {
            catalog,
            config: CseConfig::default(),
        }
    }

    /// Session with an explicit configuration.
    pub fn with_config(catalog: Catalog, config: CseConfig) -> Self {
        Session { catalog, config }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    pub fn config(&self) -> &CseConfig {
        &self.config
    }

    pub fn set_config(&mut self, config: CseConfig) {
        self.config = config;
    }

    /// Register a table (computing statistics).
    pub fn register_table(&mut self, table: Table) -> Result<(), Error> {
        self.catalog
            .register_table(table)
            .map_err(|e| Error::Catalog(e.to_string()))
    }

    /// Optimize a SQL batch without executing it.
    pub fn plan(&self, sql: &str) -> Result<Optimized, Error> {
        cse_core::optimize_sql(&self.catalog, sql, &self.config).map_err(Error::Planning)
    }

    /// Run the qlint static analyzer over a SQL batch without optimizing
    /// or executing it: parse (with recovery), lower, and report
    /// contradictions, tautologies, redundant conjuncts, dead columns and
    /// cross-statement sharing hints with stable rule ids and byte spans.
    ///
    /// This never fails: broken statements become `lint/parse-error` /
    /// `lint/bind-error` diagnostics in the returned outcome. To make
    /// findings gate execution, set [`cse_lint::LintMode`] on the
    /// session's [`CseConfig::lint`] instead.
    pub fn lint_batch(&self, sql: &str) -> cse_lint::LintOutcome {
        cse_lint::lint_batch(&self.catalog, sql)
    }

    /// Optimize and execute a SQL batch (statements separated by `;`),
    /// under the configured governance: optimization budget, fault
    /// injection and execution limits.
    pub fn query(&self, sql: &str) -> Result<BatchOutcome, Error> {
        let optimized = self.plan(sql)?;
        let engine = Engine::new(&self.catalog, &optimized.ctx);
        let out = engine
            .execute_governed(
                &optimized.plan,
                &self.config.failpoints,
                &self.config.exec_limits,
            )
            .map_err(|e| Error::Execution(e.to_string()))?;
        let mut events = optimized.report.degradations.clone();
        events.extend(out.events);
        Ok(BatchOutcome {
            results: out.results,
            report: optimized.report,
            metrics: out.metrics,
            events,
        })
    }

    /// [`Session::query`] under a cancellation token: the token is checked
    /// cooperatively at the optimizer's stage boundaries and hot loops and
    /// every few thousand rows inside the interpreter, so an expired
    /// deadline or an explicit [`CancelToken::cancel`] (e.g. from a
    /// watchdog thread) stops the batch promptly without killing the
    /// calling thread. A canceled request fails with a `REQ_CANCELED` /
    /// `REQ_DEADLINE` message rather than degrading.
    pub fn query_with_cancel(
        &self,
        sql: &str,
        cancel: &CancelToken,
    ) -> Result<BatchOutcome, Error> {
        let mut config = self.config.clone();
        config.cancel = cancel.clone();
        let optimized =
            cse_core::optimize_sql(&self.catalog, sql, &config).map_err(Error::Planning)?;
        let engine = Engine::new(&self.catalog, &optimized.ctx);
        let out = engine
            .execute_cancelable(
                &optimized.plan,
                &config.failpoints,
                &config.exec_limits,
                cancel,
            )
            .map_err(|e| Error::Execution(e.to_string()))?;
        let mut events = optimized.report.degradations.clone();
        events.extend(out.events);
        Ok(BatchOutcome {
            results: out.results,
            report: optimized.report,
            metrics: out.metrics,
            events,
        })
    }

    /// Human-readable explanation: chosen plan, spool definitions, and the
    /// optimizer's report.
    pub fn explain(&self, sql: &str) -> Result<String, Error> {
        use std::fmt::Write as _;
        let optimized = self.plan(sql)?;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "estimated cost: {:.1} (baseline without sharing: {:.1})",
            optimized.report.final_cost, optimized.report.baseline_cost
        );
        let _ = writeln!(
            s,
            "candidate CSEs: {} ({} CSE optimizations)",
            optimized.report.candidates.len(),
            optimized.report.cse_optimizations
        );
        for c in &optimized.report.candidates {
            let _ = writeln!(
                s,
                "  {}: tables={:?} grouped={} consumers={} ≈{:.0} rows",
                c.id, c.tables, c.grouped, c.consumers, c.est_rows
            );
        }
        let _ = writeln!(s, "plan:\n{}", optimized.plan.root.render());
        for (id, spool) in &optimized.plan.spools {
            let _ = writeln!(s, "spool {id} (computed once):\n{}", spool.plan.render());
        }
        Ok(s)
    }

    /// Create a materialized view from its defining SELECT.
    pub fn create_materialized_view(&mut self, name: &str, select: &str) -> Result<(), Error> {
        cse_core::create_materialized_view(&mut self.catalog, name, select, &self.config)
            .map_err(Error::Catalog)
    }

    /// Insert rows into a base table, incrementally maintaining every
    /// affected materialized view (the maintenance batch shares covering
    /// subexpressions).
    pub fn insert(&mut self, table: &str, rows: Vec<Row>) -> Result<MaintenanceReport, Error> {
        cse_core::maintain_insert(&mut self.catalog, table, rows, &self.config)
            .map_err(Error::Catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cse_storage::{row, DataType, Schema, Value};

    fn session() -> Session {
        let mut t = Table::new(
            "t",
            Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
        );
        for i in 0..10 {
            t.push(row(vec![Value::Int(i % 3), Value::Int(i)])).unwrap();
        }
        let mut s = Session::new(Catalog::new());
        s.register_table(t).unwrap();
        s
    }

    #[test]
    fn query_roundtrip() {
        let s = session();
        let out = s
            .query("select k, sum(v) as total from t group by k")
            .unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].rows.len(), 3);
    }

    #[test]
    fn explain_mentions_cost() {
        let s = session();
        let e = s.explain("select k from t where v < 5").unwrap();
        assert!(e.contains("estimated cost"));
        assert!(e.contains("plan:"));
    }

    #[test]
    fn planning_errors_are_typed() {
        let s = session();
        match s.query("select nope from t") {
            Err(Error::Planning(m)) => assert!(m.contains("nope")),
            other => panic!("expected planning error, got {other:?}"),
        }
    }

    #[test]
    fn lint_batch_reports_and_query_respects_mode() {
        let mut s = session();
        let out = s.lint_batch("select k from t where k < 5 and k > 10");
        assert!(out
            .report
            .fired_rules()
            .contains(cse_lint::rules::CONTRADICTION));
        assert!(out.facts.unsat_statements.contains(&0));
        // Deny mode rejects the same batch at planning time…
        let mut cfg = s.config().clone();
        cfg.lint = cse_lint::LintMode::Deny;
        s.set_config(cfg);
        match s.query("select k from t where k < 5 and k > 10") {
            Err(Error::Planning(m)) => assert!(m.contains("lint denied"), "{m}"),
            other => panic!("expected lint denial, got {other:?}"),
        }
        // …while warn mode executes it (to an empty result) and attaches
        // the report.
        let mut cfg = s.config().clone();
        cfg.lint = cse_lint::LintMode::Warn;
        s.set_config(cfg);
        let out = s.query("select k from t where k < 5 and k > 10").unwrap();
        assert!(out.results[0].rows.is_empty());
        let lint = out.report.lint.as_ref().expect("lint report attached");
        assert!(lint.fired_rules().contains(cse_lint::rules::CONTRADICTION));
    }

    #[test]
    fn view_lifecycle() {
        let mut s = session();
        s.create_materialized_view("v_sum", "select k, sum(v) as total from t group by k")
            .unwrap();
        assert_eq!(s.catalog().table("v_sum").unwrap().row_count(), 3);
        let report = s
            .insert("t", vec![row(vec![Value::Int(1), Value::Int(100)])])
            .unwrap();
        assert_eq!(report.views, vec!["v_sum".to_string()]);
        // Group k=1 total was 1+4+7=12, now 112.
        let v = s.catalog().table("v_sum").unwrap();
        let row_k1 = v
            .scan()
            .find(|r| r[0] == Value::Int(1))
            .expect("group 1 present");
        assert_eq!(row_k1[1], Value::Int(112));
    }
}
