-- One statement per analyzer rule (plus a share-hint pair at the end).

-- lint/contradiction: crossing ranges on o_totalprice.
select o_orderkey
from orders
where o_totalprice < 100 and o_totalprice > 200;

-- lint/tautology (c_acctbal = c_acctbal) and lint/redundant-pred
-- (c_nationkey < 25 is implied by c_nationkey < 10).
select c_custkey
from customer
where c_acctbal = c_acctbal and c_nationkey < 10 and c_nationkey < 25;

-- lint/type-mismatch: a string column compared against an integer.
select c_custkey
from customer
where c_name > 5;

-- lint/dead-column: c_nationkey is grouped on but never projected.
select c_mktsegment, count(*) as n
from customer
group by c_mktsegment, c_nationkey;

-- lint/share-hint: same signature, compatible joins, different ranges.
select c_nationkey, count(*) as n
from customer
where c_acctbal > 100
group by c_nationkey;

select c_nationkey, count(*) as n
from customer
where c_acctbal > 500
group by c_nationkey;
