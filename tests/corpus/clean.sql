-- Two dissimilar aggregates over different tables: the analyzer should
-- have nothing to say (not even a share hint).
select c_mktsegment, count(*) as n
from customer
group by c_mktsegment;

select o_orderpriority, count(*) as n
from orders
where o_totalprice > 1000
group by o_orderpriority;
