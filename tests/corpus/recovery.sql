-- The first statement is a syntax error; the parser must resynchronize
-- at the ';' and still analyze the second statement (which carries a
-- contradiction).
select frobnicate from;

select o_orderkey
from orders
where o_orderkey < 0 and o_orderkey > 10;
