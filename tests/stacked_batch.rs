//! §6.2 end-to-end: adding Q4 (part ⋈ orders ⋈ lineitem) to the Example 1
//! batch changes the optimal covering-subexpression choice and enables
//! stacked candidates (a narrower CSE consumed inside a wider CSE's
//! definition).

use cse_bench::workloads;
use similar_subexpr::prelude::*;

fn catalog() -> Catalog {
    generate_catalog(&TpchConfig::new(0.002))
}

fn run(catalog: &Catalog, cfg: &CseConfig) -> (Optimized, ExecOutput) {
    let o = optimize_sql(catalog, &workloads::table2_batch(), cfg).expect("optimize");
    let engine = Engine::new(catalog, &o.ctx);
    let out = engine.execute(&o.plan).expect("execute");
    (o, out)
}

#[test]
fn four_query_batch_results_match_baseline() {
    let catalog = catalog();
    let (_, base) = run(&catalog, &CseConfig::no_cse());
    let (opt, shared) = run(&catalog, &CseConfig::default());
    assert_eq!(base.results.len(), 4);
    for (b, s) in base.results.iter().zip(shared.results.iter()) {
        assert!(b.approx_eq(s, 1e-9), "results diverge");
    }
    assert!(!opt.plan.spools.is_empty());
}

#[test]
fn q4_changes_the_candidate_set() {
    // Paper: the additional query results in a different overall choice of
    // covering subexpressions (2 candidates with heuristics rather than 1).
    let catalog = catalog();
    let t1 = optimize_sql(&catalog, &workloads::table1_batch(), &CseConfig::default()).unwrap();
    let t2 = optimize_sql(&catalog, &workloads::table2_batch(), &CseConfig::default()).unwrap();
    assert!(
        t2.report.candidates.len() > t1.report.candidates.len(),
        "Q4 must add a sharing opportunity: {} vs {}",
        t2.report.candidates.len(),
        t1.report.candidates.len()
    );
    // The orders ⋈ lineitem pre-aggregate family must be among them.
    assert!(
        t2.report
            .candidates
            .iter()
            .any(|c| c.tables == ["lineitem", "orders"]),
        "expected an orders⋈lineitem candidate: {:?}",
        t2.report.candidates
    );
}

#[test]
fn stacked_candidate_has_def_internal_consumer() {
    // The narrower {orders,lineitem} candidate should have picked up a
    // consumer inside the wider {customer,orders,lineitem} candidate's
    // definition: more consumers than the four queries alone provide... or
    // at minimum, as many (the stacked extension is cost-based).
    let catalog = catalog();
    let t2 = optimize_sql(&catalog, &workloads::table2_batch(), &CseConfig::default()).unwrap();
    let ol = t2
        .report
        .candidates
        .iter()
        .find(|c| c.tables == ["lineitem", "orders"])
        .expect("orders⋈lineitem candidate");
    assert!(
        ol.consumers >= 4,
        "pre-aggregate candidate must cover Q1..Q4's partials (+ stacked): {ol:?}"
    );
}

#[test]
fn stacked_off_is_still_correct() {
    let catalog = catalog();
    let cfg = CseConfig {
        stacked: false,
        ..Default::default()
    };
    let (_, base) = run(&catalog, &CseConfig::no_cse());
    let o = optimize_sql(&catalog, &workloads::table2_batch(), &cfg).unwrap();
    let engine = Engine::new(&catalog, &o.ctx);
    let out = engine.execute(&o.plan).unwrap();
    for (b, s) in base.results.iter().zip(out.results.iter()) {
        assert!(b.approx_eq(s, 1e-9));
    }
}

#[test]
fn batch_cost_improves_about_2x() {
    let catalog = catalog();
    let (no, _) = run(&catalog, &CseConfig::no_cse());
    let (yes, _) = run(&catalog, &CseConfig::default());
    let ratio = no.plan.cost / yes.plan.cost;
    assert!(ratio > 1.5, "paper Table 2 shows ≈1.9x, got {ratio:.2}x");
}
