//! B-tree index range scans (the machinery behind the paper's Example 7:
//! a consumer made cheap by an index on `o_orderdate` should not be forced
//! through a covering subexpression).

use similar_subexpr::optimizer::PhysicalPlan;
use similar_subexpr::prelude::*;

fn catalogs() -> (Catalog, Catalog) {
    let plain = generate_catalog(&TpchConfig::new(0.002));
    let mut indexed = generate_catalog(&TpchConfig::new(0.002));
    indexed.create_btree_index("orders", "o_orderdate").unwrap();
    (plain, indexed)
}

const POINTY: &str = "select o_orderkey, o_totalprice from orders \
                      where o_orderdate = '1995-01-01'";

#[test]
fn index_scan_is_chosen_and_correct() {
    let (plain, indexed) = catalogs();
    let cfg = CseConfig::default();
    let o_plain = optimize_sql(&plain, POINTY, &cfg).unwrap();
    let o_indexed = optimize_sql(&indexed, POINTY, &cfg).unwrap();
    // The indexed catalog's plan must use the index and be cheaper.
    let mut uses_index = false;
    o_indexed.plan.root.visit(&mut |p| {
        uses_index |= matches!(p, PhysicalPlan::IndexRangeScan { .. });
    });
    assert!(uses_index, "plan:\n{}", o_indexed.plan.root.render());
    assert!(o_indexed.plan.cost < o_plain.plan.cost);
    // Same rows either way.
    let r_plain = Engine::new(&plain, &o_plain.ctx)
        .execute(&o_plain.plan)
        .unwrap();
    let r_indexed = Engine::new(&indexed, &o_indexed.ctx)
        .execute(&o_indexed.plan)
        .unwrap();
    assert!(r_plain.results[0].approx_eq(&r_indexed.results[0], 1e-12));
}

#[test]
fn range_predicates_use_the_index_too() {
    let (plain, indexed) = catalogs();
    let sql = "select o_orderkey from orders \
               where o_orderdate >= '1998-01-01' and o_orderdate < '1998-02-01'";
    let cfg = CseConfig::default();
    let o = optimize_sql(&indexed, sql, &cfg).unwrap();
    let mut uses_index = false;
    o.plan.root.visit(&mut |p| {
        uses_index |= matches!(p, PhysicalPlan::IndexRangeScan { .. });
    });
    assert!(uses_index);
    let a = Engine::new(&indexed, &o.ctx).execute(&o.plan).unwrap();
    let o2 = optimize_sql(&plain, sql, &cfg).unwrap();
    let b = Engine::new(&plain, &o2.ctx).execute(&o2.plan).unwrap();
    assert!(a.results[0].approx_eq(&b.results[0], 1e-12));
    assert!(
        !a.results[0].rows.is_empty(),
        "January 1998 must have orders"
    );
}

#[test]
fn cheap_indexed_consumer_can_decline_sharing() {
    // Example 7's logic: with an index making one consumer very cheap, the
    // optimizer is free to serve it from the index while the other
    // consumer computes normally — the plan remains correct either way.
    let (_, indexed) = catalogs();
    let batch = "select o_orderkey, sum(l_extendedprice) as r \
                 from orders, lineitem \
                 where o_orderkey = l_orderkey and o_orderdate = '1995-01-01' \
                 group by o_orderkey; \
                 select o_orderkey, sum(l_quantity) as q \
                 from orders, lineitem \
                 where o_orderkey = l_orderkey and o_orderdate > '1995-01-01' \
                 group by o_orderkey;";
    let with = optimize_sql(&indexed, batch, &CseConfig::default()).unwrap();
    let without = optimize_sql(&indexed, batch, &CseConfig::no_cse()).unwrap();
    let a = Engine::new(&indexed, &with.ctx)
        .execute(&with.plan)
        .unwrap();
    let b = Engine::new(&indexed, &without.ctx)
        .execute(&without.plan)
        .unwrap();
    for (x, y) in a.results.iter().zip(b.results.iter()) {
        assert!(x.approx_eq(y, 1e-9));
    }
    assert!(with.plan.cost <= without.plan.cost);
}

#[test]
fn not_equal_conjunct_survives_index_subsumption() {
    // `o_orderdate > X and o_orderkey <> K`: the <> conjunct cannot be
    // represented by the index interval and must be applied as residual.
    let (_, indexed) = catalogs();
    let orders = indexed.table("orders").unwrap();
    let some_key = orders
        .scan()
        .find(|r| {
            r[4].as_i64().unwrap()
                > similar_subexpr::storage::dates::parse_date("1998-01-01").unwrap() as i64
        })
        .map(|r| r[0].as_i64().unwrap())
        .expect("an order in 1998");
    let sql = format!(
        "select o_orderkey from orders \
         where o_orderdate >= '1998-01-01' and o_orderkey <> {some_key}"
    );
    let o = optimize_sql(&indexed, &sql, &CseConfig::default()).unwrap();
    let out = Engine::new(&indexed, &o.ctx).execute(&o.plan).unwrap();
    assert!(
        !out.results[0]
            .rows
            .iter()
            .any(|r| r[0].as_i64() == Some(some_key)),
        "excluded key leaked through the index scan"
    );
}
