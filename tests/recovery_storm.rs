//! Recovery storm: kill the durability layer at every WAL failpoint,
//! across seeds, restart, and assert the recovered catalog is equivalent
//! to a crash-free oracle over the durable prefix.
//!
//! The durability promise under test:
//!
//! - everything acknowledged past a durability barrier survives the crash
//!   (recovered `last_lsn` ≥ highest synced LSN);
//! - the recovered catalog equals the oracle built by applying exactly the
//!   first `last_lsn` mutations to a fresh catalog — no divergence, no
//!   silent reordering;
//! - a torn tail is tolerated with a stable reason code; corruption inside
//!   the durable prefix is a hard error with a stable reason code — never
//!   a panic, never silent data loss.
//!
//! Deterministic under `CSE_FAIL_SEED` (the ci.sh robustness sweep runs
//! seeds 1, 7 and 42).

use similar_subexpr::durable::{
    catalogs_equivalent, recover, DurableCatalog, DurableError, DurableOptions, SimStore,
    TailStatus,
};
use similar_subexpr::govern::{sites, FailSpec, FailpointRegistry};
use similar_subexpr::storage::delta::{DeltaAction, DeltaTable};
use similar_subexpr::storage::schema::Schema;
use similar_subexpr::storage::table::{row, Table};
use similar_subexpr::storage::value::{DataType, Value};
use similar_subexpr::storage::{Catalog, CatalogMutation};

fn env_seed() -> u64 {
    std::env::var("CSE_FAIL_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

fn table_named(name: &str, vals: &[i64]) -> Table {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)]);
    let mut t = Table::new(name, schema);
    for v in vals {
        t.push(row(vec![Value::Int(*v), Value::str(format!("row-{v}"))]))
            .unwrap();
    }
    t
}

/// A deterministic mutation workload covering every journaled kind:
/// registrations, replacements, index builds, view registration, delta
/// application, and a drop. Applying any prefix to a fresh catalog is
/// valid, which is exactly what the oracle needs.
fn workload() -> Vec<CatalogMutation> {
    let mut out = Vec::new();
    for i in 0..6i64 {
        out.push(CatalogMutation::RegisterTable {
            table: table_named(&format!("t{i}"), &[i, i + 10, i + 20]),
        });
    }
    out.push(CatalogMutation::CreateBtreeIndex {
        table: "t0".into(),
        column: "k".into(),
    });
    out.push(CatalogMutation::CreateHashIndex {
        table: "t1".into(),
        column: "s".into(),
    });
    out.push(CatalogMutation::ReplaceTable {
        table: table_named("t2", &[100, 200]),
    });
    out.push(CatalogMutation::RegisterView {
        name: "t3".into(),
        definition_sql: "select k from t0".into(),
    });
    let mut delta = DeltaTable::new(
        "t4",
        &Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)]),
    );
    delta
        .record(
            DeltaAction::Insert,
            row(vec![Value::Int(77), Value::str("row-77")]),
        )
        .unwrap();
    delta
        .record(
            DeltaAction::Delete,
            row(vec![Value::Int(4), Value::str("row-4")]),
        )
        .unwrap();
    out.push(CatalogMutation::ApplyDelta { delta });
    out.push(CatalogMutation::DropTable { name: "t5".into() });
    for i in 6..10i64 {
        out.push(CatalogMutation::RegisterTable {
            table: table_named(&format!("t{i}"), &[i]),
        });
    }
    out
}

/// Oracle: the catalog a crash-free run would hold after the first
/// `prefix` mutations.
fn oracle(prefix: usize) -> Catalog {
    let mut c = Catalog::new();
    for m in workload().iter().take(prefix) {
        c.apply_mutation(m)
            .expect("workload prefix applies cleanly");
    }
    c
}

/// Run the workload against a durable catalog with `site` armed at the
/// given probability, crash at the first injected fault (or run to
/// completion), then restart and check the recovered state against the
/// oracle.
fn crash_restart_check(site: &str, probability: f64, seed: u64, opts: DurableOptions) {
    let store = SimStore::new();
    let registry = FailpointRegistry::from_specs(&[FailSpec {
        site: site.to_string(),
        probability,
        seed,
    }]);
    let (mut dc, _) = DurableCatalog::open(store.clone(), opts, registry.clone())
        .expect("open on empty store cannot hit a write-path fault");
    let mut synced_lsn = 0u64;
    let mut crashed = false;
    for m in &workload() {
        match dc.apply(m) {
            Ok(()) => {
                if dc.unsynced() == 0 {
                    synced_lsn = dc.last_lsn();
                }
            }
            Err(err) => {
                assert!(
                    err.code().starts_with("WAL_"),
                    "{site}: fault surfaced without a WAL_ code: {err}"
                );
                crashed = true;
                break;
            }
        }
    }
    if !crashed {
        dc.flush().expect("no fault armed past the workload");
        synced_lsn = dc.last_lsn();
    }
    drop(dc);
    store.crash(seed);
    registry.disarm(site);

    let (recovered, info) = match recover(&store, &registry) {
        Ok(v) => v,
        Err(err) => panic!("{site} seed {seed}: restart failed: {err}"),
    };
    assert!(
        info.last_lsn >= synced_lsn,
        "{site} seed {seed}: durability violated — synced through lsn {synced_lsn} \
         but recovered only to {}",
        info.last_lsn
    );
    let expect = oracle(info.last_lsn as usize);
    if let Err(diff) = catalogs_equivalent(&expect, &recovered) {
        panic!("{site} seed {seed}: recovered catalog diverges from oracle: {diff}");
    }
    assert!(info.verify.is_clean(), "{}", info.verify.render());
}

/// Every write-path failpoint × seeds {1, 7, 42} (plus the sweep seed),
/// under both sync-every-commit and group-commit cadences.
#[test]
fn every_wal_failpoint_crash_restarts_to_oracle() {
    let mut seeds = vec![1u64, 7, 42];
    let env = env_seed();
    if !seeds.contains(&env) {
        seeds.push(env);
    }
    for site in [sites::WAL_APPEND, sites::WAL_FSYNC, sites::SNAPSHOT_WRITE] {
        for &seed in &seeds {
            for probability in [0.3, 1.0] {
                crash_restart_check(
                    site,
                    probability,
                    seed,
                    DurableOptions {
                        group_commit: 1,
                        snapshot_every: 5,
                    },
                );
                crash_restart_check(
                    site,
                    probability,
                    seed,
                    DurableOptions {
                        group_commit: 4,
                        snapshot_every: 0,
                    },
                );
            }
        }
    }
}

/// A fault injected *during replay* must itself be recoverable: disarm
/// and recover again, landing on the same oracle state.
#[test]
fn crash_during_recovery_is_recoverable() {
    for &seed in &[1u64, 7, 42, env_seed()] {
        let store = SimStore::new();
        let (mut dc, _) = DurableCatalog::open(
            store.clone(),
            DurableOptions {
                group_commit: 1,
                snapshot_every: 0,
            },
            FailpointRegistry::disabled(),
        )
        .unwrap();
        for m in &workload() {
            dc.apply(m).unwrap();
        }
        let n = workload().len();
        drop(dc);

        let registry = FailpointRegistry::from_specs(&[FailSpec {
            site: sites::RECOVER_REPLAY.to_string(),
            probability: 1.0,
            seed,
        }]);
        let err = recover(&store, &registry).expect_err("certain replay fault");
        assert_eq!(err.code(), "WAL_REPLAY_FAULT");

        registry.disarm(sites::RECOVER_REPLAY);
        let (recovered, info) = recover(&store, &registry).expect("second restart");
        assert_eq!(info.replayed, n);
        catalogs_equivalent(&oracle(n), &recovered).unwrap();
    }
}

/// A torn tail (simulated partial append) recovers to the durable prefix
/// with the `WAL_TORN_TAIL` reason code — no panic, no hard error.
#[test]
fn torn_tail_recovers_durable_prefix() {
    let store = SimStore::new();
    let (mut dc, _) = DurableCatalog::open(
        store.clone(),
        DurableOptions {
            group_commit: 1,
            snapshot_every: 0,
        },
        FailpointRegistry::disabled(),
    )
    .unwrap();
    let n = workload().len();
    for m in &workload() {
        dc.apply(m).unwrap();
    }
    drop(dc);
    // Shear the last few bytes off the synced log: the final frame is now
    // incomplete, everything before it intact.
    store.truncate_wal_to(store.wal_len() - 3);
    let (recovered, info) = recover(&store, &FailpointRegistry::disabled()).unwrap();
    assert!(matches!(info.tail, TailStatus::TornTail { .. }));
    assert_eq!(info.tail.code(), "WAL_TORN_TAIL");
    assert_eq!(info.last_lsn as usize, n - 1);
    catalogs_equivalent(&oracle(n - 1), &recovered).unwrap();
}

/// A corrupted checksum *inside* the durable prefix (valid frames after
/// it) must be detected and reported as `WAL_CORRUPT_FRAME` — replaying
/// past it would silently drop acknowledged records.
#[test]
fn corrupted_wal_checksum_is_detected() {
    let store = SimStore::new();
    let (mut dc, _) = DurableCatalog::open(
        store.clone(),
        DurableOptions {
            group_commit: 1,
            snapshot_every: 0,
        },
        FailpointRegistry::disabled(),
    )
    .unwrap();
    for m in &workload() {
        dc.apply(m).unwrap();
    }
    drop(dc);
    // Flip one payload bit in the first frame.
    store.corrupt_wal_byte(20, 0x10);
    let err = recover(&store, &FailpointRegistry::disabled())
        .expect_err("mid-log corruption must not recover silently");
    assert_eq!(err.code(), "WAL_CORRUPT_FRAME");
    assert!(matches!(err, DurableError::CorruptFrame { .. }));
}

/// A corrupted snapshot is detected (`WAL_CORRUPT_SNAPSHOT`), not served.
#[test]
fn corrupted_snapshot_is_detected() {
    let store = SimStore::new();
    let (mut dc, _) = DurableCatalog::open(
        store.clone(),
        DurableOptions {
            group_commit: 1,
            snapshot_every: 0,
        },
        FailpointRegistry::disabled(),
    )
    .unwrap();
    for m in &workload() {
        dc.apply(m).unwrap();
    }
    dc.snapshot().unwrap();
    drop(dc);
    assert!(store.has_snapshot());
    store.corrupt_snapshot_byte(40, 0x04);
    let err = recover(&store, &FailpointRegistry::disabled())
        .expect_err("corrupt snapshot must not recover silently");
    assert_eq!(err.code(), "WAL_CORRUPT_SNAPSHOT");
}

/// A crash landing between snapshot publish and WAL truncation leaves
/// records the snapshot already covers; recovery must skip them instead
/// of double-applying.
#[test]
fn snapshot_published_before_truncation_skips_covered_records() {
    let store = SimStore::new();
    let (mut dc, _) = DurableCatalog::open(
        store.clone(),
        DurableOptions {
            group_commit: 1,
            snapshot_every: 0,
        },
        FailpointRegistry::disabled(),
    )
    .unwrap();
    let n = workload().len();
    for m in &workload() {
        dc.apply(m).unwrap();
    }
    // Publish the snapshot by hand without truncating: the exact on-disk
    // state of a crash between the two steps.
    let bytes = similar_subexpr::durable::snapshot::encode_snapshot(dc.last_lsn(), dc.catalog());
    drop(dc);
    {
        use similar_subexpr::durable::Store as _;
        let mut s = store.clone();
        s.write_snapshot(&bytes).unwrap();
    }
    let (recovered, info) = recover(&store, &FailpointRegistry::disabled()).unwrap();
    assert_eq!(info.skipped, n);
    assert_eq!(info.replayed, 0);
    catalogs_equivalent(&oracle(n), &recovered).unwrap();
}
