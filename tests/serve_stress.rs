//! Adversarial concurrency suite for the batch server: a fault storm over
//! 8 workers must leave every request with a structured terminal outcome
//! (no hangs, no worker deaths), results must be identical across worker
//! counts, explicit cancels and deadlines must reject with their reason
//! codes, and a forced circuit-breaker trip must serve baseline-only plans
//! until the half-open probe recovers.
//!
//! The fault-injection seed comes from `CSE_FAIL_SEED` (default 42) so CI
//! can sweep a seed matrix; every assertion here must hold for *any* seed.

use similar_subexpr::govern::sites;
use similar_subexpr::prelude::*;
use similar_subexpr::serve::{Admission, BreakerConfig, BreakerState};
use std::sync::Arc;
use std::time::Duration;

const Q1: &str = "select c_nationkey, sum(l_extendedprice) as le \
     from customer, orders, lineitem \
     where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and c_nationkey < 20 \
     group by c_nationkey";
const Q2: &str = "select c_nationkey, sum(l_quantity) as lq \
     from customer, orders, lineitem \
     where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and c_nationkey < 25 \
     group by c_nationkey";

fn cse_batch() -> String {
    format!("{Q1};\n{Q2};")
}

/// The request mix: sharing-rich batches interleaved with light queries.
fn request_mix(n: usize) -> Vec<String> {
    let light = [
        "select c_mktsegment, count(*) as n from customer group by c_mktsegment".to_string(),
        "select o_orderstatus, sum(o_totalprice) as s from orders group by o_orderstatus"
            .to_string(),
    ];
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                cse_batch()
            } else {
                light[(i / 2) % light.len()].clone()
            }
        })
        .collect()
}

fn catalog() -> Arc<Catalog> {
    Arc::new(generate_catalog(&TpchConfig::new(0.002)))
}

fn seed() -> u64 {
    std::env::var("CSE_FAIL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Ungoverned no-CSE reference results for one request.
fn reference(catalog: &Catalog, sql: &str) -> Vec<ResultSet> {
    let optimized = optimize_sql(catalog, sql, &CseConfig::no_cse()).expect("reference optimize");
    Engine::new(catalog, &optimized.ctx)
        .execute(&optimized.plan)
        .expect("reference execute")
        .results
}

fn assert_matches(got: &[ResultSet], want: &[ResultSet], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: statement count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(g.approx_eq(w, 1e-9), "{what}: statement {i} diverged");
    }
}

fn storm(seed: u64) -> FailpointRegistry {
    let spec = |site: &str, probability: f64| FailSpec {
        site: site.to_string(),
        probability,
        seed,
    };
    FailpointRegistry::from_specs(&[
        spec(sites::SPOOL_MATERIALIZE, 0.5),
        spec(sites::SCAN_TABLE, 0.3),
        spec(sites::SERVE_WORKER, 0.2),
    ])
}

/// The headline acceptance test: 8 workers under a fault storm, every
/// request reaches exactly one structured terminal outcome, no worker
/// dies, and every *completed* request is still correct. Runs in both
/// server modes: lenient (in-engine recovery — nothing may be rejected)
/// and strict (server-owned retries — rejections allowed, but only with
/// the `EXEC_FAULT` code and an exhausted retry count).
#[test]
fn fault_storm_on_8_workers_yields_terminal_outcomes() {
    let catalog = catalog();
    let sqls = request_mix(24);
    let refs: Vec<Vec<ResultSet>> = sqls.iter().map(|s| reference(&catalog, s)).collect();
    for strict in [false, true] {
        let mut server = Server::new(
            Arc::clone(&catalog),
            ServerConfig {
                workers: 8,
                queue_capacity: 8,
                admit: AdmitPolicy::Block,
                max_retries: 3,
                retry_backoff: Duration::from_micros(200),
                strict_faults: strict,
                cse: CseConfig {
                    failpoints: storm(seed()),
                    ..CseConfig::default()
                },
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<_> = sqls
            .iter()
            .map(|sql| server.submit(sql).expect("blocking admission"))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            match t.wait() {
                Outcome::Done(reply) => {
                    assert_matches(
                        &reply.results,
                        &refs[i],
                        &format!("strict={strict} req {i}"),
                    );
                }
                Outcome::Rejected(r) => {
                    assert!(strict, "lenient mode recovers every fault in-engine: {r:?}");
                    assert_eq!(
                        r.reason,
                        RejectReason::ExecFault,
                        "only transient-fault rejections are legal here: {r:?}"
                    );
                    assert_eq!(r.retries, 3, "must exhaust retries first: {r:?}");
                }
            }
        }
        let stats = server.drain();
        assert_eq!(stats.submitted, 24);
        assert_eq!(stats.completed + stats.rejected, 24, "no request may hang");
        assert_eq!(stats.worker_panics, 0, "no worker may die");
        if !strict {
            assert_eq!(stats.rejected, 0);
        }
    }
}

/// Concurrency must not change answers: the same request set through 1
/// and 8 workers yields identical per-request results, under fault
/// injection, across the CI seed matrix {1, 7, 42}.
#[test]
fn results_identical_across_worker_counts_and_seeds() {
    let catalog = catalog();
    let sqls = request_mix(12);
    for fault_seed in [1u64, 7, 42] {
        let run = |workers: usize| -> Vec<Vec<ResultSet>> {
            let mut server = Server::new(
                Arc::clone(&catalog),
                ServerConfig {
                    workers,
                    queue_capacity: 4,
                    admit: AdmitPolicy::Block,
                    // Lenient mode: faults are recovered in-engine, so
                    // every request completes in both runs and the
                    // comparison is total.
                    strict_faults: false,
                    cse: CseConfig {
                        failpoints: storm(fault_seed),
                        ..CseConfig::default()
                    },
                    ..ServerConfig::default()
                },
            );
            let tickets: Vec<_> = sqls
                .iter()
                .map(|sql| server.submit(sql).expect("blocking admission"))
                .collect();
            let results = tickets
                .into_iter()
                .map(|t| match t.wait() {
                    Outcome::Done(reply) => reply.results,
                    Outcome::Rejected(r) => panic!("lenient run rejected: {r:?}"),
                })
                .collect();
            server.drain();
            results
        };
        let single = run(1);
        let eight = run(8);
        for (i, (a, b)) in single.iter().zip(eight.iter()).enumerate() {
            assert_eq!(a.len(), b.len(), "seed {fault_seed} req {i}");
            for (j, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    x.approx_eq(y, 1e-9),
                    "seed {fault_seed} req {i} stmt {j}: 1-worker and 8-worker diverged"
                );
            }
        }
    }
}

/// Forced breaker trip: a permanently panicking CSE phase trips the
/// breaker, subsequent requests are served baseline-only (visible in the
/// reply's admission + OPT_FORCED event), and after the fault is disarmed
/// the half-open probe runs full CSE and closes the breaker again.
#[test]
fn breaker_trips_serves_baseline_and_recovers_via_probe() {
    let catalog = catalog();
    let want = reference(&catalog, &cse_batch());
    // Generous cooldown: on a loaded single-core CI box the test thread
    // can lose tens of milliseconds between requests, and a cooldown that
    // elapses "spuriously" turns an expected baseline-only admission into
    // a (failing) probe. The phases below tolerate that reordering, but a
    // longer cooldown keeps the common path deterministic.
    let cooldown = Duration::from_millis(200);
    let mut server = Server::new(
        Arc::clone(&catalog),
        ServerConfig {
            workers: 1, // sequential: breaker transitions are deterministic
            breaker: BreakerConfig {
                enabled: true,
                window: 8,
                min_samples: 4,
                trip_ratio: 0.5,
                cooldown,
            },
            cse: CseConfig {
                failpoints: FailpointRegistry::from_specs(&[FailSpec {
                    site: sites::OPT_CSE_PHASE.to_string(),
                    probability: 1.0,
                    seed: seed(),
                }]),
                ..CseConfig::default()
            },
            ..ServerConfig::default()
        },
    );
    let ask = |server: &Server| -> similar_subexpr::serve::BatchReply {
        match server.submit(&cse_batch()).expect("admitted").wait() {
            Outcome::Done(reply) => reply,
            Outcome::Rejected(r) => panic!("breaker scenario must not reject: {r:?}"),
        }
    };

    // Phase 1: the panicking CSE phase degrades every request to the
    // baseline rung (worker survives each panic) until the breaker trips.
    for _ in 0..4 {
        let reply = ask(&server);
        assert_eq!(reply.admission, Admission::Full);
        assert_eq!(reply.rung, Rung::Baseline);
        assert!(reply.events.iter().any(|e| e.reason.code() == "OPT_PANIC"));
        assert_matches(&reply.results, &want, "degraded phase");
    }
    assert_eq!(server.breaker().state(), BreakerState::Open);

    // Phase 2: while the fault persists the breaker never serves a
    // full-CSE plan. The common admission is BaselineOnly (OPT_FORCED —
    // the CSE phase is not even attempted); if the cooldown happens to
    // elapse between requests, the admission is a probe that fails
    // against the armed fault and re-opens the breaker. Either way every
    // answer stays correct on the baseline rung.
    let mut saw_baseline_only = false;
    for _ in 0..4 {
        let reply = ask(&server);
        assert_ne!(
            reply.admission,
            Admission::Full,
            "breaker must stay engaged while the fault persists"
        );
        assert_eq!(reply.rung, Rung::Baseline);
        if reply.admission == Admission::BaselineOnly {
            saw_baseline_only = true;
            assert!(reply.events.iter().any(|e| e.reason.code() == "OPT_FORCED"));
            assert!(!reply.events.iter().any(|e| e.reason.code() == "OPT_PANIC"));
        }
        assert_matches(&reply.results, &want, "open-breaker phase");
    }
    assert!(
        saw_baseline_only,
        "an open breaker must serve baseline-only between probes"
    );

    // Phase 3: fix the fault (shared registry handle), wait out the
    // cooldown; the next admission becomes the half-open probe, runs the
    // full CSE phase, and closes the breaker. A late phase-2 failed probe
    // may have just restarted the cooldown, so allow a few rounds.
    assert!(server.failpoints().disarm(sites::OPT_CSE_PHASE));
    let mut recovered = false;
    for _ in 0..3 {
        std::thread::sleep(cooldown + Duration::from_millis(50));
        let reply = ask(&server);
        if reply.admission == Admission::Probe {
            assert_eq!(reply.rung, Rung::FullCse, "healthy probe runs full CSE");
            assert_matches(&reply.results, &want, "probe");
            recovered = true;
            break;
        }
        assert_eq!(reply.admission, Admission::BaselineOnly);
    }
    assert!(recovered, "the half-open probe must run once cooled down");
    assert_eq!(server.breaker().state(), BreakerState::Closed);

    // Phase 4: recovered — full admission again.
    let healthy = ask(&server);
    assert_eq!(healthy.admission, Admission::Full);
    assert_eq!(healthy.rung, Rung::FullCse);
    assert_matches(&healthy.results, &want, "recovered");

    let stats = server.drain();
    // At least the initial trip and the successful probe; a cooldown that
    // races a phase-2 request adds a failed probe plus re-trip on top.
    assert!(stats.breaker.trips >= 1);
    assert!(stats.breaker.probes >= 1);
    assert!(stats.breaker.baseline_served >= 1);
    assert_eq!(stats.worker_panics, 0, "pipeline isolation held");
}

/// An explicit client cancel on a queued request rejects it with
/// `REQ_CANCELED` — the cancel is terminal, never retried.
#[test]
fn explicit_cancel_rejects_with_req_canceled() {
    let catalog = catalog();
    let mut server = Server::new(
        Arc::clone(&catalog),
        ServerConfig {
            workers: 1,
            max_retries: 5,
            ..ServerConfig::default()
        },
    );
    // Occupy the single worker with a heavy batch, then cancel a queued
    // request before the worker can reach it.
    let busy = server.submit(&cse_batch()).expect("admitted");
    let victim = server.submit(&cse_batch()).expect("admitted");
    victim.cancel();
    match victim.wait() {
        Outcome::Rejected(r) => {
            assert_eq!(r.reason, RejectReason::ReqCanceled);
            assert_eq!(r.retries, 0, "explicit cancels never retry");
        }
        Outcome::Done(_) => panic!("canceled request must not complete"),
    }
    assert!(busy.wait().is_done());
    let stats = server.drain();
    assert_eq!(stats.canceled, 1);
}

/// Watchdog deadlines: a deadline far too short to plan the batch expires
/// every attempt; the request is retried (fresh deadline each time), then
/// rejected `REQ_DEADLINE` — and the worker is alive for the next request.
#[test]
fn watchdog_deadline_rejects_then_worker_serves_again() {
    let catalog = catalog();
    let mut server = Server::new(
        Arc::clone(&catalog),
        ServerConfig {
            workers: 1,
            max_retries: 2,
            retry_backoff: Duration::from_micros(100),
            ..ServerConfig::default()
        },
    );
    let doomed = server
        .submit_with_deadline(&cse_batch(), Some(Duration::from_micros(1)))
        .expect("admitted");
    match doomed.wait() {
        Outcome::Rejected(r) => {
            assert_eq!(r.reason, RejectReason::ReqDeadline);
            assert_eq!(r.retries, 2);
        }
        Outcome::Done(_) => panic!("a 1µs deadline cannot plan a join batch"),
    }
    // The same worker must serve an undeadlined request afterwards.
    let ok = server.submit(&cse_batch()).expect("admitted");
    assert!(ok.wait().is_done(), "worker must survive deadline cancels");
    let stats = server.drain();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.completed, 1);
}
