//! Plan-shape assertions for the flagship workloads: which operators the
//! chosen plans contain, how the spool is structured. These pin down the
//! optimizer's observable decisions (not exact costs, which move with the
//! cost model).

use cse_bench::workloads;
use similar_subexpr::optimizer::{to_dot, PhysicalPlan};
use similar_subexpr::prelude::*;

fn optimize(sql: &str) -> Optimized {
    let catalog = generate_catalog(&TpchConfig::new(0.002));
    optimize_sql(&catalog, sql, &CseConfig::default()).unwrap()
}

fn count_ops(p: &PhysicalPlan, name: &str) -> usize {
    let mut n = 0;
    p.visit(&mut |x| {
        if x.name() == name {
            n += 1;
        }
    });
    n
}

#[test]
fn table1_plan_reads_one_grouped_spool_three_times() {
    let o = optimize(&workloads::table1_batch());
    assert_eq!(o.plan.spools.len(), 1);
    let (id, spool) = o.plan.spools.iter().next().unwrap();
    // The covering subexpression is an aggregate over the 3-way join.
    assert!(count_ops(&spool.plan, "HashAggregate") >= 1);
    assert!(count_ops(&spool.plan, "HashJoin") >= 2);
    assert_eq!(o.plan.root.cse_reads().get(id), Some(&3));
    // Every consumer re-aggregates or filters on top of the spool.
    let mut reads_with_postprocessing = 0;
    o.plan.root.visit(&mut |p| {
        if let PhysicalPlan::CseRead { filter, reagg, .. } = p {
            if filter.is_some() || reagg.is_some() {
                reads_with_postprocessing += 1;
            }
        }
    });
    assert!(
        reads_with_postprocessing >= 2,
        "consumers with narrower predicates/group-bys must compensate"
    );
}

#[test]
fn spool_layout_matches_definition_output() {
    let o = optimize(&workloads::table1_batch());
    for (id, spool) in &o.plan.spools {
        let def_cols = spool.plan.layout();
        for c in &spool.layout {
            assert!(
                def_cols.contains(c),
                "spool {id} column {c} not produced by its definition"
            );
        }
    }
}

#[test]
fn no_nl_joins_in_flagship_plans() {
    // All flagship joins are equijoins; nested loops would indicate a
    // key-splitting regression. (Scalar-subquery cross joins are the one
    // legitimate NlJoin: single-row inner.)
    let o = optimize(&workloads::table1_batch());
    assert_eq!(count_ops(&o.plan.root, "NlJoin"), 0);
    for spool in o.plan.spools.values() {
        assert_eq!(count_ops(&spool.plan, "NlJoin"), 0);
    }
}

#[test]
fn dot_export_of_real_plan_is_well_formed() {
    let o = optimize(&workloads::table1_batch());
    let dot = to_dot(&o.plan);
    assert!(dot.contains("cluster_spool_"));
    assert!(dot.contains("cluster_stmt_2"), "three statements expected");
    assert_eq!(dot.matches("digraph").count(), 1);
    // Each CseRead gets a dashed edge from the spool anchor.
    assert!(dot.matches("style=dashed").count() >= 3);
}

#[test]
fn nested_query_plan_has_scalar_cross_join() {
    let o = optimize(workloads::NESTED);
    // The HAVING subquery joins above the aggregate via a single-row
    // cross join (an NlJoin with TRUE predicate).
    assert!(count_ops(&o.plan.root, "NlJoin") >= 1);
}
