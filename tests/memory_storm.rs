//! Memory-governor storm suite: many concurrent spool-heavy batches
//! against a deliberately tight global byte budget. The contract under
//! memory pressure is the serving robustness contract — every request
//! reaches exactly one structured terminal outcome (completed, possibly
//! degraded, or shed with a stable reason code), no worker dies, every
//! completed answer is still correct, and the pool drains back to zero
//! when the storm passes.
//!
//! The fault-injection seed comes from `CSE_FAIL_SEED` (default 42) so CI
//! can sweep a seed matrix; every assertion here must hold for *any* seed.

use similar_subexpr::govern::sites;
use similar_subexpr::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const Q1: &str = "select c_nationkey, sum(l_extendedprice) as le \
     from customer, orders, lineitem \
     where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and c_nationkey < 20 \
     group by c_nationkey";
const Q2: &str = "select c_nationkey, sum(l_quantity) as lq \
     from customer, orders, lineitem \
     where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and c_nationkey < 25 \
     group by c_nationkey";

fn cse_batch() -> String {
    format!("{Q1};\n{Q2};")
}

/// Spool-heavy mix: mostly sharing batches (the spools are what press on
/// the pool), some light queries.
fn request_mix(n: usize) -> Vec<String> {
    let light = "select c_mktsegment, count(*) as n from customer group by c_mktsegment";
    (0..n)
        .map(|i| {
            if i % 3 == 2 {
                light.to_string()
            } else {
                cse_batch()
            }
        })
        .collect()
}

fn catalog() -> Arc<Catalog> {
    Arc::new(generate_catalog(&TpchConfig::new(0.002)))
}

fn seed() -> u64 {
    std::env::var("CSE_FAIL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Ungoverned no-CSE reference results for one request.
fn reference(catalog: &Catalog, sql: &str) -> Vec<ResultSet> {
    let optimized = optimize_sql(catalog, sql, &CseConfig::no_cse()).expect("reference optimize");
    Engine::new(catalog, &optimized.ctx)
        .execute(&optimized.plan)
        .expect("reference execute")
        .results
}

/// The headline storm: 6 workers, a budget tight enough that concurrent
/// heavy batches contend for grants (and a seeded `mem.reserve` fault on
/// top), shedding admission. Every request must reach exactly one
/// terminal outcome; the only rejection codes allowed are the
/// load-shedding ones; completed answers match the reference; the pool
/// drains to zero.
#[test]
fn memory_storm_completes_with_recoverable_outcomes_only() {
    let catalog = catalog();
    let sqls = request_mix(36);
    let refs: Vec<Vec<ResultSet>> = sqls.iter().map(|s| reference(&catalog, s)).collect();
    let mut server = Server::new(
        Arc::clone(&catalog),
        ServerConfig {
            workers: 6,
            queue_capacity: 8,
            admit: AdmitPolicy::Shed,
            deadline: Some(Duration::from_millis(500)),
            max_retries: 2,
            retry_backoff: Duration::from_micros(200),
            mem_budget: Some(2 << 20),
            mem_grant: 256 * 1024,
            cse: CseConfig {
                failpoints: FailpointRegistry::from_specs(&[FailSpec {
                    site: sites::MEM_RESERVE.to_string(),
                    probability: 0.3,
                    seed: seed(),
                }]),
                ..CseConfig::default()
            },
            ..ServerConfig::default()
        },
    );
    let governor = server.memory_governor().expect("budget set").clone();
    let outcomes: Vec<(usize, Outcome)> = sqls
        .iter()
        .enumerate()
        .map(|(i, sql)| {
            let out = match server.submit(sql) {
                Ok(t) => t.wait(),
                Err(r) => Outcome::Rejected(r),
            };
            (i, out)
        })
        .collect();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    for (i, out) in &outcomes {
        match out {
            Outcome::Done(reply) => {
                completed += 1;
                assert_eq!(reply.results.len(), refs[*i].len(), "request {i}");
                for (g, w) in reply.results.iter().zip(&refs[*i]) {
                    assert!(
                        g.approx_eq(w, 1e-9),
                        "request {i} diverged under memory pressure (seed {})",
                        seed()
                    );
                }
            }
            Outcome::Rejected(r) => {
                rejected += 1;
                assert!(
                    matches!(
                        r.reason,
                        RejectReason::ShedMemory
                            | RejectReason::ShedQueueFull
                            | RejectReason::ReqDeadline
                    ),
                    "request {i}: non-recoverable rejection {:?} ({}) under the storm",
                    r.reason,
                    r.detail
                );
            }
        }
    }
    assert_eq!(
        completed + rejected,
        sqls.len() as u64,
        "every request reaches exactly one terminal outcome"
    );
    let stats = server.drain();
    assert_eq!(stats.worker_panics, 0, "storm must not kill workers");
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.rejected, rejected);
    assert_eq!(
        governor.reserved(),
        0,
        "pool must drain once the storm passes"
    );
    assert_eq!(governor.pressure(), Pressure::Normal);
}

/// A certain `mem.reserve` fault refuses every grant: all requests must
/// terminate with `SHED_MEMORY` (never a hang, never EXEC_INTERNAL) and
/// carry an exhausted retry count.
#[test]
fn certain_reserve_fault_sheds_everything_with_stable_code() {
    let catalog = catalog();
    let mut server = Server::new(
        Arc::clone(&catalog),
        ServerConfig {
            workers: 2,
            max_retries: 1,
            retry_backoff: Duration::from_micros(100),
            mem_budget: Some(8 << 20),
            cse: CseConfig {
                failpoints: FailpointRegistry::from_specs(&[FailSpec {
                    site: sites::MEM_RESERVE.to_string(),
                    probability: 1.0,
                    seed: seed(),
                }]),
                ..CseConfig::default()
            },
            ..ServerConfig::default()
        },
    );
    for _ in 0..4 {
        let t = server.submit(&cse_batch()).expect("admitted");
        match t.wait() {
            Outcome::Rejected(r) => {
                assert_eq!(r.reason.code(), "SHED_MEMORY", "{}", r.detail);
                assert_eq!(r.retries, 1, "retries must be exhausted before shedding");
            }
            Outcome::Done(_) => panic!("certain reservation fault cannot complete"),
        }
    }
    let stats = server.drain();
    assert_eq!(stats.shed_memory, 4);
    assert_eq!(stats.worker_panics, 0);
}

/// Elevated pool pressure (a large held reservation) caps the starting
/// rung: the request still completes, but off a lower rung and with a
/// `MEM_PRESSURE` degradation event explaining why.
#[test]
fn elevated_pressure_caps_the_starting_rung() {
    let catalog = catalog();
    let mut server = Server::new(
        Arc::clone(&catalog),
        ServerConfig {
            workers: 1,
            mem_budget: Some(64 << 20),
            mem_grant: 256 * 1024,
            ..ServerConfig::default()
        },
    );
    let governor = server.memory_governor().expect("budget set").clone();
    // Hold ~72% of the pool: above the 70% Elevated threshold, below the
    // 90% Critical one, with enough headroom left that the capped plan's
    // own (conservative, per-statement cumulative) charges still fit.
    let _hog = governor
        .try_reserve(46 << 20, None)
        .expect("pre-reservation fits");
    assert_eq!(governor.pressure(), Pressure::Elevated);
    let t = server.submit(&cse_batch()).expect("Elevated still admits");
    match t.wait() {
        Outcome::Done(reply) => {
            assert_ne!(reply.rung, Rung::FullCse, "starting rung must be capped");
            assert!(
                reply
                    .events
                    .iter()
                    .any(|e| e.reason.code() == "MEM_PRESSURE"),
                "the cap must be reported: {:?}",
                reply.events
            );
        }
        Outcome::Rejected(r) => panic!("Elevated pressure must degrade, not shed: {r:?}"),
    }
    server.drain();
}

/// Critical pool pressure sheds new admissions with `SHED_MEMORY`; when
/// the pressure clears, the same request is admitted and completes at
/// full rung again.
#[test]
fn critical_pressure_sheds_then_recovers() {
    let catalog = catalog();
    let mut server = Server::new(
        Arc::clone(&catalog),
        ServerConfig {
            workers: 1,
            mem_budget: Some(8 << 20),
            ..ServerConfig::default()
        },
    );
    let governor = server.memory_governor().expect("budget set").clone();
    let hog = governor
        .try_reserve((8 << 20) * 95 / 100, None)
        .expect("pre-reservation fits");
    assert_eq!(governor.pressure(), Pressure::Critical);
    match server.submit(&cse_batch()) {
        Err(r) => {
            assert_eq!(r.reason.code(), "SHED_MEMORY", "{}", r.detail);
            assert_eq!(r.retries, 0, "admission sheds before any attempt");
        }
        Ok(_) => panic!("Critical pressure must shed at admission"),
    }
    drop(hog);
    assert_eq!(governor.pressure(), Pressure::Normal);
    let t = server.submit(&cse_batch()).expect("recovered pool admits");
    match t.wait() {
        Outcome::Done(reply) => assert_eq!(reply.rung, Rung::FullCse),
        Outcome::Rejected(r) => panic!("recovered pool must serve: {r:?}"),
    }
    let stats = server.drain();
    assert_eq!(stats.shed_memory, 1);
}
