//! §6.4 end-to-end: maintained materialized views must equal views
//! recomputed from scratch, and the maintenance batch must share the
//! common delta ⋈ orders ⋈ lineitem work.

use cse_bench::{experiments, workloads};
use similar_subexpr::prelude::*;

fn sorted_rows(t: &Table) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = t.rows().iter().map(|r| r.to_vec()).collect();
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if !o.is_eq() {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

fn rows_approx_eq(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(ra, rb)| {
            ra.iter()
                .zip(rb.iter())
                .all(|(x, y)| match (x.as_f64(), y.as_f64()) {
                    (Some(fx), Some(fy)) => {
                        (fx - fy).abs() <= 1e-6 * fx.abs().max(fy.abs()).max(1.0)
                    }
                    _ => x == y,
                })
        })
}

#[test]
fn maintained_views_match_recomputation() {
    let cfg = CseConfig::default();
    let mut catalog = generate_catalog(&TpchConfig::new(0.002));
    for (name, def) in workloads::maintenance_views() {
        create_materialized_view(&mut catalog, name, &def, &cfg).unwrap();
    }
    let inserts = experiments::new_customers(&catalog, 150);
    let report = maintain_insert(&mut catalog, "customer", inserts, &cfg).unwrap();
    assert_eq!(report.views.len(), 3);
    assert_eq!(report.delta_rows, 150);

    // Recompute each view from the (already updated) base tables and
    // compare with the incrementally maintained contents.
    for (name, def) in workloads::maintenance_views() {
        let o = optimize_sql(&catalog, &def, &CseConfig::no_cse()).unwrap();
        let engine = Engine::new(&catalog, &o.ctx);
        let fresh = engine.execute(&o.plan).unwrap().results.remove(0);
        let mut fresh_rows: Vec<Vec<Value>> = fresh.rows.iter().map(|r| r.to_vec()).collect();
        fresh_rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if !o.is_eq() {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        let maintained = sorted_rows(&catalog.table(name).unwrap());
        assert!(
            rows_approx_eq(&maintained, &fresh_rows),
            "view {name} diverged after incremental maintenance \
             ({} maintained rows vs {} recomputed)",
            maintained.len(),
            fresh_rows.len()
        );
    }
}

#[test]
fn maintenance_batch_detects_sharing() {
    let cfg = CseConfig::default();
    let mut catalog = generate_catalog(&TpchConfig::new(0.002));
    for (name, def) in workloads::maintenance_views() {
        create_materialized_view(&mut catalog, name, &def, &cfg).unwrap();
    }
    let inserts = experiments::new_customers(&catalog, 150);
    let report = maintain_insert(&mut catalog, "customer", inserts, &cfg).unwrap();
    assert!(
        !report.cse.candidates.is_empty(),
        "the three maintenance queries share delta⋈orders⋈lineitem: {:?}",
        report.cse
    );
    assert!(report.cse.final_cost < report.cse.baseline_cost);
}

#[test]
fn maintenance_cost_factor_matches_paper_shape() {
    // Paper: maintenance time reduced by about 3x. Compare estimated costs
    // of the maintenance batch (robust against wall-clock noise).
    let (no, yes) = experiments::view_maintenance(0.002, 150);
    assert_eq!(no.views, 3);
    assert_eq!(yes.views, 3);
    assert!(yes.candidates >= 1);
}

#[test]
fn unaffected_views_are_skipped() {
    let cfg = CseConfig::default();
    let mut catalog = generate_catalog(&TpchConfig::new(0.001));
    create_materialized_view(
        &mut catalog,
        "mv_parts",
        "select p_brand, count(*) as n from part group by p_brand",
        &cfg,
    )
    .unwrap();
    let before = sorted_rows(&catalog.table("mv_parts").unwrap());
    let inserts = experiments::new_customers(&catalog, 10);
    let report = maintain_insert(&mut catalog, "customer", inserts, &cfg).unwrap();
    assert!(report.views.is_empty(), "part view must not be touched");
    let after = sorted_rows(&catalog.table("mv_parts").unwrap());
    assert_eq!(before, after);
}

#[test]
fn rejects_non_self_maintainable_views() {
    let cfg = CseConfig::default();
    let mut catalog = generate_catalog(&TpchConfig::new(0.001));
    let err = create_materialized_view(
        &mut catalog,
        "mv_avg",
        "select c_nationkey, avg(c_acctbal) as a from customer group by c_nationkey",
        &cfg,
    )
    .unwrap_err();
    assert!(err.contains("AVG"), "unexpected error: {err}");
}
