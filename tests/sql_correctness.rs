//! SQL-semantics correctness against hand-computed expectations on tiny
//! hand-built tables — independent of TPC-H and of sharing.

use similar_subexpr::prelude::*;
use similar_subexpr::storage::{row, DataType, Schema};

fn tiny_catalog() -> Catalog {
    let mut cat = Catalog::new();
    let mut dept = Table::new(
        "dept",
        Schema::from_pairs(&[("d_id", DataType::Int), ("d_name", DataType::Str)]),
    );
    for (id, name) in [(1, "eng"), (2, "ops"), (3, "empty")] {
        dept.push(row(vec![Value::Int(id), Value::str(name)]))
            .unwrap();
    }
    let mut emp = Table::new(
        "emp",
        Schema::from_pairs(&[
            ("e_id", DataType::Int),
            ("e_dept", DataType::Int),
            ("e_salary", DataType::Float),
            ("e_hired", DataType::Date),
        ]),
    );
    let rows = [
        (1, 1, 100.0, "2020-01-15"),
        (2, 1, 200.0, "2021-06-01"),
        (3, 2, 150.0, "2019-12-31"),
        (4, 2, 50.0, "2022-03-10"),
        (5, 2, 75.0, "2020-07-04"),
    ];
    for (id, dept, sal, hired) in rows {
        emp.push(row(vec![
            Value::Int(id),
            Value::Int(dept),
            Value::Float(sal),
            Value::date(hired).unwrap(),
        ]))
        .unwrap();
    }
    cat.register_table(dept).unwrap();
    cat.register_table(emp).unwrap();
    cat
}

fn query(catalog: &Catalog, sql: &str) -> ResultSet {
    let o = optimize_sql(catalog, sql, &CseConfig::default()).expect("optimize");
    let engine = Engine::new(catalog, &o.ctx);
    engine.execute(&o.plan).expect("execute").results.remove(0)
}

#[test]
fn filter_and_project() {
    let cat = tiny_catalog();
    let rs = query(&cat, "select e_id from emp where e_salary > 100");
    let mut ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    ids.sort();
    assert_eq!(ids, vec![2, 3]);
}

#[test]
fn join_with_alias() {
    let cat = tiny_catalog();
    let rs = query(
        &cat,
        "select d.d_name, e.e_salary from dept d, emp e where d.d_id = e.e_dept and e.e_salary < 100",
    );
    assert_eq!(rs.rows.len(), 2); // salaries 50 and 75, both ops
    assert!(rs.rows.iter().all(|r| r[0].as_str() == Some("ops")));
}

#[test]
fn group_by_with_aggregates() {
    let cat = tiny_catalog();
    let rs = query(
        &cat,
        "select e_dept, sum(e_salary) as total, count(*) as n, min(e_salary) as lo, max(e_salary) as hi \
         from emp group by e_dept",
    )
    .canonicalized();
    assert_eq!(rs.rows.len(), 2);
    // dept 1: total 300, n 2, lo 100, hi 200
    assert_eq!(rs.rows[0][0], Value::Int(1));
    assert_eq!(rs.rows[0][1], Value::Float(300.0));
    assert_eq!(rs.rows[0][2], Value::Int(2));
    assert_eq!(rs.rows[0][3], Value::Float(100.0));
    assert_eq!(rs.rows[0][4], Value::Float(200.0));
    // dept 2: total 275, n 3
    assert_eq!(rs.rows[1][1], Value::Float(275.0));
    assert_eq!(rs.rows[1][2], Value::Int(3));
}

#[test]
fn avg_decomposes_to_sum_over_count() {
    let cat = tiny_catalog();
    let rs = query(
        &cat,
        "select e_dept, avg(e_salary) as a from emp group by e_dept",
    )
    .canonicalized();
    assert_eq!(rs.rows[0][1], Value::Float(150.0)); // dept 1: 300/2
    let a2 = rs.rows[1][1].as_f64().unwrap();
    assert!((a2 - 275.0 / 3.0).abs() < 1e-9);
}

#[test]
fn having_filters_groups() {
    let cat = tiny_catalog();
    let rs = query(
        &cat,
        "select e_dept, sum(e_salary) as total from emp group by e_dept having sum(e_salary) > 280",
    );
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(1));
}

#[test]
fn order_by_on_alias() {
    let cat = tiny_catalog();
    let rs = query(&cat, "select e_id, e_salary as s from emp order by s desc");
    let sal: Vec<f64> = rs.rows.iter().map(|r| r[1].as_f64().unwrap()).collect();
    assert_eq!(sal, vec![200.0, 150.0, 100.0, 75.0, 50.0]);
}

#[test]
fn date_literals_coerce() {
    let cat = tiny_catalog();
    let rs = query(&cat, "select e_id from emp where e_hired < '2020-06-01'");
    let mut ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    ids.sort();
    assert_eq!(ids, vec![1, 3]);
}

#[test]
fn between_works() {
    let cat = tiny_catalog();
    let rs = query(
        &cat,
        "select e_id from emp where e_salary between 75 and 150",
    );
    let mut ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    ids.sort();
    assert_eq!(ids, vec![1, 3, 5]);
}

#[test]
fn select_star_joins() {
    let cat = tiny_catalog();
    let rs = query(&cat, "select * from dept, emp where d_id = e_dept");
    assert_eq!(rs.columns.len(), 2 + 4);
    assert_eq!(rs.rows.len(), 5);
}

#[test]
fn scalar_subquery_in_where() {
    let cat = tiny_catalog();
    // Employees above the mean salary (115).
    let rs = query(
        &cat,
        "select e_id from emp where e_salary > (select sum(e_salary) / 5 from emp)",
    );
    let mut ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    ids.sort();
    assert_eq!(ids, vec![2, 3]);
}

#[test]
fn empty_group_by_result() {
    let cat = tiny_catalog();
    let rs = query(
        &cat,
        "select e_dept, count(*) as n from emp where e_salary > 10000 group by e_dept",
    );
    assert!(rs.rows.is_empty());
}

#[test]
fn scalar_aggregate_over_empty_input() {
    let cat = tiny_catalog();
    let rs = query(
        &cat,
        "select count(*) as n, sum(e_salary) as s from emp where e_salary > 10000",
    );
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(0));
    assert!(rs.rows[0][1].is_null());
}

#[test]
fn or_predicates() {
    let cat = tiny_catalog();
    let rs = query(
        &cat,
        "select e_id from emp where e_salary < 60 or e_salary > 190",
    );
    let mut ids: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    ids.sort();
    assert_eq!(ids, vec![2, 4]);
}

#[test]
fn arithmetic_in_projection() {
    let cat = tiny_catalog();
    let rs = query(
        &cat,
        "select e_id, e_salary * 2 + 1 as x from emp where e_id = 1",
    );
    assert_eq!(rs.rows[0][1], Value::Float(201.0));
}

#[test]
fn errors_are_reported() {
    let cat = tiny_catalog();
    assert!(optimize_sql(&cat, "select nope from emp", &CseConfig::default()).is_err());
    assert!(optimize_sql(&cat, "select e_id from ghost", &CseConfig::default()).is_err());
    assert!(optimize_sql(&cat, "select e_id from", &CseConfig::default()).is_err());
    // Ambiguous column across two tables with same schema prefix: e_dept
    // appears once, d_id once — construct a real ambiguity via self-ish
    // aliases.
    assert!(optimize_sql(
        &cat,
        "select e_salary from emp a, emp b where a.e_id = b.e_id",
        &CseConfig::default()
    )
    .is_err());
}
