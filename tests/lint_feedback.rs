//! End-to-end analyzer feedback: running a batch with qlint enabled
//! changes the *plan* (smaller covering predicates, FALSE short-circuits)
//! but never the *results*.

use similar_subexpr::lint::rules;
use similar_subexpr::prelude::*;
use similar_subexpr::storage::{row, DataType, Schema};

fn tiny_catalog() -> Catalog {
    let mut cat = Catalog::new();
    let mut t = Table::new(
        "t",
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
    );
    // v values straddle the 10 / 20 / 100 boundaries the queries use.
    let rows = [
        (1, 3),
        (1, 9),
        (1, 15),
        (2, 7),
        (2, 19),
        (2, 25),
        (3, 50),
        (3, 99),
        (3, 150),
        (4, 5),
    ];
    for (k, v) in rows {
        t.push(row(vec![Value::Int(k), Value::Int(v)])).unwrap();
    }
    cat.register_table(t).unwrap();
    cat
}

/// Optimize + execute a batch under the given lint mode; return the
/// result sets (row order normalized — plan shapes may differ) and the
/// optimizer report.
fn run(cat: &Catalog, sql: &str, lint: LintMode) -> (Vec<Vec<String>>, CseReport) {
    let cfg = CseConfig {
        lint,
        ..CseConfig::default()
    };
    let o = optimize_sql(cat, sql, &cfg).expect("optimize");
    let engine = Engine::new(cat, &o.ctx);
    let out = engine.execute(&o.plan).expect("execute");
    let normalized = out
        .results
        .iter()
        .map(|rs| {
            let mut rows: Vec<String> = rs.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        })
        .collect();
    (normalized, o.report)
}

#[test]
fn redundant_conjunct_facts_leave_results_unchanged() {
    let cat = tiny_catalog();
    // Both statements carry `v < 100` redundantly next to a tighter
    // range; the batch shares a sharable (t, group-by-k) signature.
    let sql = "select k, count(*) as n from t where v < 10 and v < 100 group by k;\n\
               select k, count(*) as n from t where v < 20 and v < 100 group by k;";
    let (r_off, rep_off) = run(&cat, sql, LintMode::Off);
    let (r_on, rep_on) = run(&cat, sql, LintMode::Warn);

    // The analyzer both reported the redundancy and fed it forward.
    assert!(rep_off.lint.is_none());
    let lint = rep_on.lint.expect("lint report attached in Warn mode");
    assert!(
        lint.diagnostics
            .iter()
            .any(|d| d.rule_id == rules::REDUNDANT_PRED),
        "expected lint/redundant-pred, got: {:?}",
        lint.diagnostics
    );

    // Results are identical statement by statement.
    assert_eq!(r_off, r_on);
}

#[test]
fn unsat_short_circuit_leaves_results_unchanged() {
    let cat = tiny_catalog();
    // Statement 0 is provably empty; statement 1 is a normal aggregate.
    // With lint on, statement 0 executes as a constant-FALSE filter.
    let sql = "select k from t where v < 5 and v > 10;\n\
               select k, count(*) as n from t where v < 20 group by k;";
    let (r_off, _) = run(&cat, sql, LintMode::Off);
    let (r_on, rep_on) = run(&cat, sql, LintMode::Warn);

    let lint = rep_on.lint.expect("lint report attached");
    assert!(lint
        .diagnostics
        .iter()
        .any(|d| d.rule_id == rules::CONTRADICTION));
    assert!(
        r_off[0].is_empty(),
        "contradictory statement returns no rows"
    );
    assert_eq!(r_off, r_on);
}

#[test]
fn unsat_scalar_aggregate_still_returns_one_row() {
    let cat = tiny_catalog();
    // A scalar aggregate over an empty selection must still produce its
    // single row (count = 0) — the FALSE filter goes *below* the
    // aggregate, never above it.
    let sql = "select count(*) as n from t where v < 5 and v > 10;";
    let (r_off, _) = run(&cat, sql, LintMode::Off);
    let (r_on, _) = run(&cat, sql, LintMode::Warn);
    assert_eq!(r_off[0].len(), 1, "scalar aggregate keeps its one row");
    assert_eq!(r_off, r_on);
}
