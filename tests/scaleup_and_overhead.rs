//! §6.5 scaleup shape and the §6 overhead claim, as fast integration
//! checks (full sweeps live in the benchmark harness).

use cse_bench::workloads;
use similar_subexpr::prelude::*;

fn catalog() -> Catalog {
    generate_catalog(&TpchConfig::new(0.002))
}

#[test]
fn benefit_grows_with_batch_size() {
    let catalog = catalog();
    let ratio = |n: usize| {
        let sql = workloads::scaleup_batch(n);
        let no = optimize_sql(&catalog, &sql, &CseConfig::no_cse()).unwrap();
        let yes = optimize_sql(&catalog, &sql, &CseConfig::default()).unwrap();
        no.report.final_cost / yes.report.final_cost
    };
    let r2 = ratio(2);
    let r6 = ratio(6);
    assert!(r2 > 1.1, "even two queries must share: {r2:.2}");
    assert!(
        r6 > r2,
        "cost benefit must grow with batch size (paper Fig. 8): {r2:.2} -> {r6:.2}"
    );
}

#[test]
fn scaleup_results_are_correct() {
    let catalog = catalog();
    for n in [3usize, 7] {
        let sql = workloads::scaleup_batch(n);
        let no = optimize_sql(&catalog, &sql, &CseConfig::no_cse()).unwrap();
        let yes = optimize_sql(&catalog, &sql, &CseConfig::default()).unwrap();
        let out_no = Engine::new(&catalog, &no.ctx).execute(&no.plan).unwrap();
        let out_yes = Engine::new(&catalog, &yes.ctx).execute(&yes.plan).unwrap();
        assert_eq!(out_no.results.len(), n);
        for (a, b) in out_no.results.iter().zip(out_yes.results.iter()) {
            assert!(a.approx_eq(b, 1e-9), "scaleup n={n} diverged");
        }
    }
}

#[test]
fn optimization_time_scales_roughly_linearly() {
    // The paper's claim: with pruning, optimization time grows linearly in
    // the batch size. Allow generous slack (wall-clock noise): n=8 must
    // cost less than 8x the n=2 time.
    let catalog = catalog();
    let time = |n: usize| {
        let sql = workloads::scaleup_batch(n);
        // Warm up once, then measure the median of 3.
        let mut times: Vec<f64> = (0..3)
            .map(|_| {
                optimize_sql(&catalog, &sql, &CseConfig::default())
                    .unwrap()
                    .report
                    .total_time
                    .as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[1]
    };
    let t2 = time(2);
    let t8 = time(8);
    assert!(
        t8 < t2 * 20.0,
        "optimization time exploded: n=2 {t2:.4}s, n=8 {t8:.4}s"
    );
}

#[test]
fn no_sharing_batch_finds_no_candidates() {
    let catalog = catalog();
    let sql = workloads::no_sharing_batch();
    let o = optimize_sql(&catalog, &sql, &CseConfig::default()).unwrap();
    assert_eq!(o.report.candidates.len(), 0);
    assert!(o.plan.spools.is_empty());
    assert_eq!(o.report.final_cost, o.report.baseline_cost);
}

#[test]
fn overhead_on_non_sharing_queries_is_small() {
    let catalog = catalog();
    let sql = workloads::no_sharing_batch();
    let median = |cfg: &CseConfig| {
        let mut t: Vec<f64> = (0..5)
            .map(|_| {
                optimize_sql(&catalog, &sql, cfg)
                    .unwrap()
                    .report
                    .total_time
                    .as_secs_f64()
            })
            .collect();
        t.sort_by(f64::total_cmp);
        t[2]
    };
    let off = median(&CseConfig::no_cse());
    let on = median(&CseConfig::default());
    // Paper: "the overhead was so small that we could not reliably measure
    // it". Allow 3x for wall-clock noise at sub-millisecond scales.
    assert!(
        on < off * 3.0 + 0.002,
        "CSE machinery overhead too large: off {off:.5}s on {on:.5}s"
    );
}

#[test]
fn optimization_is_deterministic() {
    let catalog = catalog();
    let sql = workloads::table1_batch();
    let a = optimize_sql(&catalog, &sql, &CseConfig::default()).unwrap();
    let b = optimize_sql(&catalog, &sql, &CseConfig::default()).unwrap();
    assert_eq!(a.report.final_cost, b.report.final_cost);
    assert_eq!(a.report.candidates.len(), b.report.candidates.len());
    assert_eq!(a.plan.spools.len(), b.plan.spools.len());
    assert_eq!(a.plan.root.render(), b.plan.root.render());
}

#[test]
fn cheap_query_gate_skips_cse_phase() {
    let catalog = catalog();
    let cfg = CseConfig {
        min_query_cost: f64::INFINITY,
        ..Default::default()
    };
    let o = optimize_sql(&catalog, &workloads::table1_batch(), &cfg).unwrap();
    assert_eq!(o.report.candidates.len(), 0);
    assert!(o.plan.spools.is_empty());
}
