//! §5.3 end-to-end: two candidates whose consumer sets live in *disjoint*
//! statement subtrees are independent (Definition 5.2/5.3) — the
//! enumeration decides each without cross-products of subsets — while
//! same-statement sharing keeps the LCA inside the statement.

use similar_subexpr::prelude::*;

/// Statement 1 shares customer⋈orders⋈lineitem between its main block and
/// its HAVING subquery; statement 2 shares part⋈lineitem the same way.
/// The two candidates' LCAs are inside different statements: independent.
const BATCH: &str = "
select c_nationkey, sum(l_discount) as totaldisc
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
group by c_nationkey
having sum(l_discount) > (select sum(l_discount) / 25
  from customer, orders, lineitem
  where c_custkey = o_custkey and o_orderkey = l_orderkey);

select p_brand, sum(l_extendedprice) as revenue
from part, lineitem
where p_partkey = l_partkey and p_size < 26
group by p_brand
having sum(l_extendedprice) > (select sum(l_extendedprice) / 50
  from part, lineitem
  where p_partkey = l_partkey and p_size < 26);
";

#[test]
fn independent_candidates_both_chosen() {
    let catalog = generate_catalog(&TpchConfig::new(0.002));
    let o = optimize_sql(&catalog, BATCH, &CseConfig::default()).unwrap();
    assert!(
        o.report.candidates.len() >= 2,
        "both statements must contribute a candidate: {:?}",
        o.report.candidates
    );
    // Both families of sharing are profitable; both spools in the plan.
    assert!(
        o.plan.spools.len() >= 2,
        "expected two independent spools, got {} (report {:?})",
        o.plan.spools.len(),
        o.report
    );
    // Independence keeps the enumeration small: per-cluster decisions, not
    // a 2^N walk (2 candidates competing would need up to 3; independent
    // clusters decide with ~2 each including the no-cluster comparison).
    assert!(
        o.report.cse_optimizations <= 6,
        "independent clusters must not multiply optimizations: {}",
        o.report.cse_optimizations
    );
}

#[test]
fn independent_results_are_correct() {
    let catalog = generate_catalog(&TpchConfig::new(0.002));
    let base = optimize_sql(&catalog, BATCH, &CseConfig::no_cse()).unwrap();
    let yes = optimize_sql(&catalog, BATCH, &CseConfig::default()).unwrap();
    let out_base = Engine::new(&catalog, &base.ctx)
        .execute(&base.plan)
        .unwrap();
    let out_yes = Engine::new(&catalog, &yes.ctx).execute(&yes.plan).unwrap();
    assert_eq!(out_base.results.len(), 2);
    for (a, b) in out_base.results.iter().zip(out_yes.results.iter()) {
        assert!(a.approx_eq(b, 1e-9));
    }
    // Each spool read at least twice (main block + subquery).
    for (&id, &reads) in &out_yes.metrics.spool_reads {
        assert!(reads >= 2, "spool {id} read only {reads} time(s)");
    }
}

#[test]
fn statement_internal_sharing_has_statement_level_lca() {
    // With a single statement, the candidate's consumers are both inside
    // it; enabling the candidate must not affect the other statement's
    // groups at all (history reuse) — observable as a small optimization
    // count when run standalone.
    let catalog = generate_catalog(&TpchConfig::new(0.002));
    let single = "select p_brand, sum(l_extendedprice) as revenue \
                  from part, lineitem \
                  where p_partkey = l_partkey and p_size < 26 \
                  group by p_brand \
                  having sum(l_extendedprice) > (select sum(l_extendedprice) / 50 \
                    from part, lineitem where p_partkey = l_partkey and p_size < 26)";
    let o = optimize_sql(&catalog, single, &CseConfig::default()).unwrap();
    assert_eq!(o.report.candidates.len(), 1, "{:?}", o.report.candidates);
    assert_eq!(o.plan.spools.len(), 1);
}
