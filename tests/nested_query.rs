//! §6.3 end-to-end: the nested query whose HAVING subquery shares the
//! customer ⋈ orders ⋈ lineitem aggregate with the outer block.

use cse_bench::workloads;
use similar_subexpr::prelude::*;

fn catalog() -> Catalog {
    generate_catalog(&TpchConfig::new(0.002))
}

fn run(catalog: &Catalog, cfg: &CseConfig) -> (Optimized, ExecOutput) {
    let o = optimize_sql(catalog, workloads::NESTED, cfg).expect("optimize");
    let engine = Engine::new(catalog, &o.ctx);
    let out = engine.execute(&o.plan).expect("execute");
    (o, out)
}

#[test]
fn nested_query_shares_subexpression() {
    let catalog = catalog();
    let (opt, out) = run(&catalog, &CseConfig::default());
    assert_eq!(out.results.len(), 1);
    // The main block and the subquery must read one shared spool.
    assert_eq!(opt.plan.spools.len(), 1, "report: {:?}", opt.report);
    let reads: u32 = out.metrics.spool_reads.values().map(|&n| n as u32).sum();
    assert!(
        reads >= 2,
        "spool must serve main block and subquery: {:?}",
        out.metrics
    );
}

#[test]
fn nested_query_results_match_baseline() {
    let catalog = catalog();
    let (_, base) = run(&catalog, &CseConfig::no_cse());
    let (_, shared) = run(&catalog, &CseConfig::default());
    assert!(base.results[0].approx_eq(&shared.results[0], 1e-9));
    // HAVING must actually filter: fewer rows than the 25 nations.
    assert!(base.results[0].rows.len() < 25);
    assert!(!base.results[0].rows.is_empty());
}

#[test]
fn nested_query_order_by_desc_is_respected() {
    let catalog = catalog();
    let (_, out) = run(&catalog, &CseConfig::default());
    let rs = &out.results[0];
    let disc_idx = rs.columns.iter().position(|c| c == "totaldisc").unwrap();
    let vals: Vec<f64> = rs
        .rows
        .iter()
        .map(|r| r[disc_idx].as_f64().unwrap())
        .collect();
    for w in vals.windows(2) {
        assert!(w[0] >= w[1], "totaldisc not descending: {vals:?}");
    }
}

#[test]
fn nested_query_cost_improves_about_2x() {
    let catalog = catalog();
    let (no, _) = run(&catalog, &CseConfig::no_cse());
    let (yes, _) = run(&catalog, &CseConfig::default());
    let ratio = no.plan.cost / yes.plan.cost;
    assert!(
        ratio > 1.4,
        "expected ≈2x improvement (paper Table 3), got {ratio:.2}x"
    );
}
