//! Workspace sweep for the shared source lexer (`cse-source`).
//!
//! qconc and qaudit both trust `cse_source::lex` to tokenize the
//! workspace's own source. The lexer is total by construction (it never
//! fails, it skips what it does not understand), so the property worth
//! pinning is *span discipline*: over every `.rs` file in the repo, the
//! emitted spans must be non-empty, monotone, non-overlapping, within
//! bounds, on UTF-8 boundaries, and must partition the file — every gap
//! between consecutive tokens is whitespace or starts a comment. A
//! lexer bug that silently dropped code (making the audits blind to it)
//! fails here, on the real corpus, not on toy inputs.

use cse_source::{collect_rs, lex};
use std::path::{Path, PathBuf};

fn workspace_sources() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))
        .expect("crates dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path().join("src"))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir, &mut files);
    }
    collect_rs(&root.join("src"), &mut files);
    collect_rs(&root.join("tests"), &mut files);
    files.sort();
    files.dedup();
    files
}

/// A gap between tokens may hold whitespace and/or comment text. The
/// lexer treats comments as opaque, so the strongest cheap check is:
/// after stripping leading whitespace, a non-empty gap must start a
/// comment.
fn gap_is_blank_or_comment(gap: &str) -> bool {
    let t = gap.trim_start();
    t.is_empty() || t.starts_with("//") || t.starts_with("/*")
}

#[test]
fn every_workspace_file_tokenizes_with_partitioning_spans() {
    let files = workspace_sources();
    assert!(
        files.len() >= 100,
        "sweep found only {} files — collection is broken",
        files.len()
    );
    for path in &files {
        let src =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let toks = lex(&src);
        assert!(
            !toks.is_empty() || src.trim().is_empty(),
            "{}: non-empty file produced no tokens",
            path.display()
        );
        let mut prev_end = 0usize;
        for (i, t) in toks.iter().enumerate() {
            let (s, e) = (t.start as usize, t.end as usize);
            assert!(
                s < e,
                "{}: token {i} has empty span {s}..{e}",
                path.display()
            );
            assert!(
                s >= prev_end,
                "{}: token {i} overlaps or reorders: {s} < previous end {prev_end}",
                path.display()
            );
            assert!(
                e <= src.len(),
                "{}: token {i} span out of bounds",
                path.display()
            );
            assert!(
                src.is_char_boundary(s) && src.is_char_boundary(e),
                "{}: token {i} span {s}..{e} splits a UTF-8 character",
                path.display()
            );
            assert!(
                gap_is_blank_or_comment(&src[prev_end..s]),
                "{}: gap {prev_end}..{s} before token {i} contains untokenized code: {:?}",
                path.display(),
                &src[prev_end..s]
            );
            prev_end = e;
        }
        assert!(
            gap_is_blank_or_comment(&src[prev_end..]),
            "{}: trailing gap {prev_end}.. contains untokenized code",
            path.display()
        );
    }
}
