//! Failpoint drift guard: every site listed in `cse_govern::sites::ALL`
//! must have a *live* injection hook — a workload in this test arms it at
//! probability 1.0, exercises the code path, and asserts the site actually
//! tripped. A site added to `ALL` without a hook (or a hook whose call
//! site was refactored away) fails here, not in production.

use similar_subexpr::govern::sites;
use similar_subexpr::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The site list this test drives is *derived from source text* by the
/// qaudit vocabulary extractor, not copied from `sites::ALL` — so a
/// site const added to `crates/govern/src/lib.rs` is exercised here
/// even if its author forgot every registry. (`sites::ALL` itself is
/// cross-checked against the same extraction below.)
fn extracted_site_vocabulary() -> cse_audit::contract::Vocabulary {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/govern/src/lib.rs");
    let src = std::fs::read_to_string(&path).expect("read govern source");
    let mut vocab = cse_audit::contract::Vocabulary::default();
    cse_audit::contract::extract_source("crates/govern/src/lib.rs", &src, &mut vocab);
    assert!(
        !vocab.failpoint_sites.is_empty(),
        "extractor found no failpoint sites in govern — extraction is broken"
    );
    vocab
}

const CSE_BATCH: &str = "select c_nationkey, sum(l_extendedprice) as le \
     from customer, orders, lineitem \
     where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and c_nationkey < 20 \
     group by c_nationkey; \
     select c_nationkey, sum(l_quantity) as lq \
     from customer, orders, lineitem \
     where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and c_nationkey < 25 \
     group by c_nationkey;";

fn certain(site: &str) -> FailpointRegistry {
    FailpointRegistry::from_specs(&[FailSpec {
        site: site.to_string(),
        probability: 1.0,
        seed: 42,
    }])
}

/// Exercise one site with a workload known to reach its hook. Returns the
/// registry so the caller can inspect the counters.
fn exercise(site: &str) -> FailpointRegistry {
    let registry = certain(site);
    let cfg = CseConfig {
        failpoints: registry.clone(),
        ..CseConfig::default()
    };
    match site {
        // Spool materialization and the (deliberately panicking)
        // CSE-phase hook both need a batch that actually shares a
        // subexpression; the engine recovers the former on the baseline,
        // the ladder isolates the latter.
        sites::SPOOL_MATERIALIZE | sites::OPT_CSE_PHASE => {
            let catalog = generate_catalog(&TpchConfig::new(0.002));
            let optimized = optimize_sql(&catalog, CSE_BATCH, &cfg).expect("optimize");
            if site == sites::SPOOL_MATERIALIZE {
                assert!(
                    !optimized.plan.spools.is_empty(),
                    "workload must produce a spool for the hook to fire"
                );
            }
            Engine::new(&catalog, &optimized.ctx)
                .execute_governed(&optimized.plan, &cfg.failpoints, &cfg.exec_limits)
                .expect("governed execution recovers");
        }
        // Any table scan reaches this hook.
        sites::SCAN_TABLE => {
            let catalog = generate_catalog(&TpchConfig::new(0.002));
            let sql = "select c_mktsegment, count(*) as n from customer group by c_mktsegment";
            let optimized = optimize_sql(&catalog, sql, &cfg).expect("optimize");
            Engine::new(&catalog, &optimized.ctx)
                .execute_governed(&optimized.plan, &cfg.failpoints, &cfg.exec_limits)
                .expect("governed execution recovers");
        }
        // The index hook needs a plan that chooses an index: a point
        // query on an indexed column.
        sites::SCAN_INDEX => {
            let mut catalog = generate_catalog(&TpchConfig::new(0.002));
            catalog
                .create_btree_index("orders", "o_orderdate")
                .expect("index");
            let sql = "select o_orderkey, o_totalprice from orders \
                       where o_orderdate = '1995-01-01'";
            let optimized = optimize_sql(&catalog, sql, &cfg).expect("optimize");
            Engine::new(&catalog, &optimized.ctx)
                .execute_governed(&optimized.plan, &cfg.failpoints, &cfg.exec_limits)
                .expect("governed execution recovers");
        }
        // The serving-layer hook fires inside a worker's attempt loop.
        sites::SERVE_WORKER => {
            let catalog = Arc::new(generate_catalog(&TpchConfig::new(0.002)));
            let mut server = Server::new(
                catalog,
                ServerConfig {
                    workers: 1,
                    max_retries: 1,
                    retry_backoff: std::time::Duration::from_micros(100),
                    cse: cfg,
                    ..ServerConfig::default()
                },
            );
            let t = server
                .submit("select c_custkey from customer")
                .expect("admitted");
            // At probability 1.0 every attempt trips: the request must be
            // rejected with the transient-fault code after retries.
            match t.wait() {
                Outcome::Rejected(r) => assert_eq!(r.reason, RejectReason::ExecFault),
                Outcome::Done(_) => panic!("certain serve.worker fault cannot complete"),
            }
            server.drain();
        }
        // The memory-governor hook fires inside reservation grants: a
        // certain fault makes try_reserve refuse deterministically.
        sites::MEM_RESERVE => {
            use similar_subexpr::govern::ReserveError;
            let gov = MemoryGovernor::new(1 << 20);
            match gov.try_reserve(64 * 1024, Some(&registry)) {
                Err(ReserveError::Injected) => {}
                other => panic!("certain mem.reserve fault must inject, got {other:?}"),
            }
            assert_eq!(gov.reserved(), 0, "refused grant must not leak bytes");
        }
        // Durability sites: drive the WAL/snapshot/recovery paths on an
        // in-memory simulated store. Each certain fault must surface as
        // the matching WAL_* reason code, never as completion.
        sites::WAL_APPEND | sites::WAL_FSYNC | sites::SNAPSHOT_WRITE | sites::RECOVER_REPLAY => {
            use similar_subexpr::storage::CatalogMutation;
            let mutation = || {
                let mut t = similar_subexpr::storage::Table::new(
                    "drift_t",
                    similar_subexpr::storage::schema::Schema::from_pairs(&[(
                        "a",
                        similar_subexpr::storage::value::DataType::Int,
                    )]),
                );
                t.push(similar_subexpr::storage::table::row(vec![Value::Int(1)]))
                    .expect("row");
                CatalogMutation::RegisterTable { table: t }
            };
            let opts = DurableOptions {
                group_commit: 1,
                snapshot_every: 0,
            };
            if site == sites::RECOVER_REPLAY {
                // Recovery needs a record to replay; journal one without
                // faults, then recover under the armed registry.
                let store = SimStore::new();
                let (mut dc, _) =
                    DurableCatalog::open(store.clone(), opts, FailpointRegistry::disabled())
                        .expect("open");
                dc.apply(&mutation()).expect("journal");
                drop(dc);
                let err = similar_subexpr::durable::recover(&store, &registry)
                    .expect_err("certain recover.replay fault must inject");
                assert_eq!(err.code(), "WAL_REPLAY_FAULT");
            } else {
                let (mut dc, _) =
                    DurableCatalog::open(SimStore::new(), opts, registry.clone()).expect("open");
                let err = match site {
                    sites::SNAPSHOT_WRITE => {
                        dc.apply(&mutation()).expect("journal");
                        dc.snapshot().expect_err("certain snapshot fault")
                    }
                    _ => dc.apply(&mutation()).expect_err("certain wal fault"),
                };
                assert!(err.code().starts_with("WAL_"), "unexpected code: {err}");
            }
        }
        other => panic!(
            "site {other} is listed in sites::ALL but has no exercise in \
             this drift test — add a workload that reaches its hook"
        ),
    }
    registry
}

/// Arm each declared site at probability 1.0, drive a workload through
/// its code path, and require a nonzero trip count. The iteration set
/// comes from the source-text extraction, so `exercise`'s exhaustive
/// match (which panics on unknown names) is what forces a workload to
/// exist for every newly declared site.
#[test]
fn every_registered_site_has_a_live_hook() {
    for site in extracted_site_vocabulary().failpoint_sites.keys() {
        let registry = exercise(site);
        let counters = registry.counters();
        let (evaluations, trips) = counters
            .get(site)
            .copied()
            .unwrap_or_else(|| panic!("{site}: no counters recorded"));
        assert!(
            evaluations > 0,
            "{site}: hook was never evaluated — the call site is gone"
        );
        assert!(
            trips > 0,
            "{site}: armed at probability 1.0 but never tripped"
        );
    }
}

/// `sites::ALL` and `sites::is_known` must agree — the `CSE_FAIL`
/// validator rejects based on `is_known`, so a site missing from either
/// side silently breaks the env grammar.
#[test]
fn site_list_and_validator_agree() {
    for &site in sites::ALL {
        assert!(sites::is_known(site), "{site} not recognized by is_known");
    }
    assert!(!sites::is_known("no.such.site"));
}

/// The source-text extraction, `sites::ALL`, and the per-site consts
/// must all name the same set. This is the same registry cross-check
/// `qaudit` runs in CI, pinned here so a failure points at the exact
/// direction of the drift.
#[test]
fn extracted_vocabulary_matches_site_registry() {
    let vocab = extracted_site_vocabulary();
    let extracted: BTreeSet<&str> = vocab.failpoint_sites.keys().map(|s| s.as_str()).collect();
    let declared: BTreeSet<&str> = sites::ALL.iter().copied().collect();
    assert_eq!(
        extracted, declared,
        "site consts in govern source vs sites::ALL disagree"
    );
    let const_names: BTreeSet<&str> = vocab.site_consts.iter().map(|(n, _)| n.as_str()).collect();
    let all_refs: BTreeSet<&str> = vocab.site_all_refs.iter().map(|s| s.as_str()).collect();
    assert_eq!(
        const_names, all_refs,
        "`mod sites` consts vs the names referenced by `sites::ALL` disagree"
    );
}

/// The `CSE_FAIL` grammar: unknown sites and malformed probabilities are
/// rejected with an error that lists the valid sites; the `allow-unknown`
/// escape hatch restores the old permissive behaviour for out-of-tree
/// sites.
#[test]
fn env_grammar_rejects_unknown_sites_with_helpful_error() {
    use similar_subexpr::govern::parse_fail_specs;

    // Valid multi-spec string parses.
    let specs = parse_fail_specs("scan.table:0.5:7,spool.materialize:1.0").expect("valid specs");
    assert_eq!(specs.len(), 2);

    // Unknown site: rejected, and the error teaches the valid names.
    let err = parse_fail_specs("scan.tabel:0.5").expect_err("typo must be rejected");
    assert!(
        err.contains("scan.tabel"),
        "error names the bad site: {err}"
    );
    for &site in sites::ALL {
        assert!(err.contains(site), "error must list {site}: {err}");
    }

    // Malformed probability: rejected even for a known site.
    assert!(parse_fail_specs("scan.table:2.5").is_err());
    assert!(parse_fail_specs("scan.table:nan").is_err());

    // Escape hatch: the `allow-unknown` token admits out-of-tree sites.
    let specs = parse_fail_specs("allow-unknown,my.plugin.site:0.5").expect("escape hatch admits");
    assert_eq!(specs.len(), 1);
    assert_eq!(specs[0].site, "my.plugin.site");
}
