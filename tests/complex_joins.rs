//! §6.5 / Table 4 end-to-end: two eight-table joins. Exercises candidate
//! explosion (dozens of signature sets), the containment heuristic, and
//! the bounded enumeration for large competing clusters.

use cse_bench::workloads;
use similar_subexpr::prelude::*;

fn catalog() -> Catalog {
    generate_catalog(&TpchConfig::new(0.002))
}

#[test]
fn eight_table_batch_is_correct_and_shares() {
    let catalog = catalog();
    let sql = workloads::complex_join_batch();
    let base = optimize_sql(&catalog, &sql, &CseConfig::no_cse()).unwrap();
    let yes = optimize_sql(&catalog, &sql, &CseConfig::default()).unwrap();
    let engine = Engine::new(&catalog, &base.ctx);
    let out_base = engine.execute(&base.plan).unwrap();
    let engine = Engine::new(&catalog, &yes.ctx);
    let out_yes = engine.execute(&yes.plan).unwrap();
    assert_eq!(out_base.results.len(), 2);
    for (b, s) in out_base.results.iter().zip(out_yes.results.iter()) {
        assert!(b.approx_eq(s, 1e-9), "eight-table results diverge");
    }
    assert!(!yes.plan.spools.is_empty(), "expected sharing");
    assert!(
        yes.plan.cost < 0.7 * base.plan.cost,
        "paper shows ≈1.7-2x cost win: {} vs {}",
        yes.plan.cost,
        base.plan.cost
    );
}

#[test]
fn heuristics_tame_the_candidate_explosion() {
    let catalog = catalog();
    let sql = workloads::complex_join_batch();
    let with_h = optimize_sql(&catalog, &sql, &CseConfig::default()).unwrap();
    let no_h = optimize_sql(&catalog, &sql, &CseConfig::no_heuristics()).unwrap();
    // Paper: 51 candidates without heuristics vs 2 with. Exact counts
    // depend on exploration; the orders of magnitude must match.
    assert!(
        no_h.report.candidates.len() >= 10,
        "expected dozens of unpruned candidates, got {}",
        no_h.report.candidates.len()
    );
    assert!(
        with_h.report.candidates.len() <= 6,
        "heuristics must prune to a handful, got {}",
        with_h.report.candidates.len()
    );
    // Both must land on comparable plans.
    let ratio = with_h.report.final_cost / no_h.report.final_cost;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "plan quality diverged: {ratio}"
    );
}

#[test]
fn optimization_time_stays_bounded() {
    let catalog = catalog();
    let sql = workloads::complex_join_batch();
    let o = optimize_sql(&catalog, &sql, &CseConfig::default()).unwrap();
    assert!(
        o.report.total_time.as_secs() < 30,
        "optimization took {:?}",
        o.report.total_time
    );
}
