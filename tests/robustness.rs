//! Adversarial robustness suite: drives every degradation path — tripped
//! optimization budgets, forced fallback, deliberate panics, injected
//! execution faults, and breached row/memory limits — and asserts that the
//! engine always answers, that the answers match an ungoverned no-CSE
//! baseline, and that every downgrade is reported with its stable reason
//! code.
//!
//! The fault-injection seed comes from `CSE_FAIL_SEED` (default 42) so CI
//! can sweep a seed matrix; every assertion here must hold for *any* seed.

use similar_subexpr::govern::sites;
use similar_subexpr::prelude::*;
use similar_subexpr::storage::row;

const Q1: &str = "select c_nationkey, sum(l_extendedprice) as le \
     from customer, orders, lineitem \
     where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and c_nationkey < 20 \
     group by c_nationkey";
const Q2: &str = "select c_nationkey, sum(l_quantity) as lq \
     from customer, orders, lineitem \
     where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and c_nationkey < 25 \
     group by c_nationkey";

fn batch() -> String {
    format!("{Q1};\n{Q2};")
}

fn catalog() -> Catalog {
    generate_catalog(&TpchConfig::new(0.002))
}

fn seed() -> u64 {
    std::env::var("CSE_FAIL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The ungoverned no-CSE reference: plain plans, no failpoints, no limits.
fn reference(catalog: &Catalog, sql: &str) -> Vec<ResultSet> {
    let optimized = optimize_sql(catalog, sql, &CseConfig::no_cse()).expect("reference optimize");
    let engine = Engine::new(catalog, &optimized.ctx);
    engine
        .execute(&optimized.plan)
        .expect("reference execute")
        .results
}

/// Optimize + execute `sql` under `cfg`'s governance and return everything.
fn governed(catalog: &Catalog, sql: &str, cfg: &CseConfig) -> (Optimized, ExecOutput) {
    let optimized = optimize_sql(catalog, sql, cfg).expect("governed optimize must not fail");
    let engine = Engine::new(catalog, &optimized.ctx);
    let out = engine
        .execute_governed(&optimized.plan, &cfg.failpoints, &cfg.exec_limits)
        .expect("governed execute must not fail");
    (optimized, out)
}

fn assert_matches_reference(got: &[ResultSet], want: &[ResultSet], scenario: &str) {
    assert_eq!(got.len(), want.len(), "{scenario}: statement count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.approx_eq(w, 1e-9),
            "{scenario}: statement {i} diverged from the no-CSE reference"
        );
    }
}

fn codes(events: &[DegradationEvent]) -> Vec<&'static str> {
    events.iter().map(|e| e.reason.code()).collect()
}

fn fail_config(site: &str, prob: f64) -> CseConfig {
    CseConfig {
        failpoints: FailpointRegistry::from_specs(&[FailSpec {
            site: site.to_string(),
            probability: prob,
            seed: seed(),
        }]),
        ..CseConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Optimizer-side ladder
// ---------------------------------------------------------------------------

/// A zero-millisecond budget must land on the baseline rung with deadline
/// events on the way down — and still answer correctly.
#[test]
fn zero_budget_degrades_to_baseline() {
    let catalog = catalog();
    let want = reference(&catalog, &batch());
    let cfg = CseConfig {
        budget: Budget::with_time_ms(0),
        ..CseConfig::default()
    };
    let (opt, out) = governed(&catalog, &batch(), &cfg);
    assert_eq!(opt.report.rung, Rung::Baseline, "{:?}", opt.report.rung);
    assert!(
        opt.plan.spools.is_empty(),
        "baseline plan must not retain spools"
    );
    let seen = codes(&opt.report.degradations);
    assert!(
        seen.iter().all(|c| *c == "OPT_DEADLINE"),
        "only deadline events expected: {seen:?}"
    );
    assert!(
        seen.len() >= 2,
        "full and capped rungs must both trip: {seen:?}"
    );
    assert_matches_reference(&out.results, &want, "zero-budget");
}

/// A one-group-expression memo cap trips the full rung on OPT_MEMO_CAP.
#[test]
fn memo_cap_trips_with_stable_code() {
    let catalog = catalog();
    let want = reference(&catalog, &batch());
    let cfg = CseConfig {
        budget: Budget {
            max_memo_gexprs: Some(1),
            ..Budget::unlimited()
        },
        ..CseConfig::default()
    };
    let (opt, out) = governed(&catalog, &batch(), &cfg);
    assert_eq!(opt.report.rung, Rung::Baseline);
    assert!(
        codes(&opt.report.degradations).contains(&"OPT_MEMO_CAP"),
        "events: {:?}",
        opt.report.degradations
    );
    assert_matches_reference(&out.results, &want, "memo-cap");
}

/// A candidate cap of zero trips the full rung (OPT_CAND_CAP); the capped
/// rung truncates instead of tripping, so the query still plans and runs.
#[test]
fn candidate_cap_trips_full_rung_then_recovers_on_capped() {
    let catalog = catalog();
    let want = reference(&catalog, &batch());
    let cfg = CseConfig {
        budget: Budget {
            max_candidates: Some(0),
            ..Budget::unlimited()
        },
        ..CseConfig::default()
    };
    let (opt, out) = governed(&catalog, &batch(), &cfg);
    assert_eq!(
        opt.report.rung,
        Rung::CappedCse,
        "capped rung truncates rather than trips: {:?}",
        opt.report.degradations
    );
    assert!(codes(&opt.report.degradations).contains(&"OPT_CAND_CAP"));
    assert_matches_reference(&out.results, &want, "candidate-cap");
}

/// `fallback_only` skips the CSE phase outright and says so.
#[test]
fn fallback_only_reports_forced_baseline() {
    let catalog = catalog();
    let want = reference(&catalog, &batch());
    let cfg = CseConfig {
        fallback_only: true,
        ..CseConfig::default()
    };
    let (opt, out) = governed(&catalog, &batch(), &cfg);
    assert_eq!(opt.report.rung, Rung::Baseline);
    assert_eq!(codes(&opt.report.degradations), vec!["OPT_FORCED"]);
    assert!(opt.plan.spools.is_empty());
    assert_matches_reference(&out.results, &want, "fallback-only");
}

/// A panic inside the CSE phase (the `opt.cse-phase` failpoint panics on
/// purpose) is caught; the plan degrades straight to baseline with
/// OPT_PANIC and the query still answers.
#[test]
fn cse_phase_panic_is_isolated() {
    let catalog = catalog();
    let want = reference(&catalog, &batch());
    let cfg = fail_config(sites::OPT_CSE_PHASE, 1.0);
    let (opt, out) = governed(&catalog, &batch(), &cfg);
    assert_eq!(opt.report.rung, Rung::Baseline);
    let seen = codes(&opt.report.degradations);
    assert!(seen.contains(&"OPT_PANIC"), "events: {seen:?}");
    assert!(opt.plan.spools.is_empty());
    assert_matches_reference(&out.results, &want, "opt-panic");
}

/// Tripped-budget plans must survive the downgrade verifier: a baseline
/// rung plan contains no covering operators and retains no spools.
#[test]
fn downgraded_plans_pass_the_downgrade_audit() {
    let catalog = catalog();
    let cfg = CseConfig {
        budget: Budget::with_time_ms(0),
        verify: true,
        ..CseConfig::default()
    };
    let (opt, _) = governed(&catalog, &batch(), &cfg);
    let report = opt.report.verification.expect("verification ran");
    assert_eq!(
        report.error_count(),
        0,
        "downgrade audit must be clean: {:?}",
        report.diagnostics
    );
}

// ---------------------------------------------------------------------------
// Execution-side recovery
// ---------------------------------------------------------------------------

/// Certain spool failure: every consumer retries on its retained baseline
/// plan, answers match, and the recovery is visible in both the batch
/// events and the per-statement provenance.
#[test]
fn spool_failure_recovers_on_baseline() {
    let catalog = catalog();
    let want = reference(&catalog, &batch());
    let cfg = fail_config(sites::SPOOL_MATERIALIZE, 1.0);
    let (opt, out) = governed(&catalog, &batch(), &cfg);
    assert!(
        !opt.plan.spools.is_empty(),
        "scenario requires a shared spool to break"
    );
    assert_matches_reference(&out.results, &want, "spool-fault");
    let seen = codes(&out.events);
    assert!(
        seen.contains(&"EXEC_FAULT_INJECTED"),
        "recovery events: {seen:?}"
    );
    assert!(
        out.results.iter().any(|r| !r.provenance.is_empty()),
        "recovered statements must carry provenance"
    );
}

/// Certain table-scan failure: even statements without spools retry (their
/// own statement is the baseline), with governance suppressed during the
/// retry so recovery always terminates.
#[test]
fn table_scan_failure_recovers_on_baseline() {
    let catalog = catalog();
    let want = reference(&catalog, &batch());
    let cfg = fail_config(sites::SCAN_TABLE, 1.0);
    let (_, out) = governed(&catalog, &batch(), &cfg);
    assert_matches_reference(&out.results, &want, "table-scan-fault");
    assert!(codes(&out.events).contains(&"EXEC_FAULT_INJECTED"));
    assert_eq!(out.results.len(), 2);
    assert!(out.results.iter().all(|r| !r.provenance.is_empty()));
}

/// Certain index-scan failure on a plan that actually chooses an index.
#[test]
fn index_scan_failure_recovers_on_baseline() {
    let mut indexed = catalog();
    indexed.create_btree_index("orders", "o_orderdate").unwrap();
    let sql = "select o_orderkey, o_totalprice from orders \
               where o_orderdate = '1995-01-01'";
    let want = reference(&indexed, sql);
    let cfg = fail_config(sites::SCAN_INDEX, 1.0);
    let (_, out) = governed(&indexed, sql, &cfg);
    assert_matches_reference(&out.results, &want, "index-scan-fault");
    assert!(
        codes(&out.events).contains(&"EXEC_FAULT_INJECTED"),
        "index plan must have hit the failpoint: {:?}",
        out.events
    );
}

/// A tiny row budget breaches, the statement retries with limits
/// suppressed, and the answer is still exact.
#[test]
fn row_budget_breach_recovers() {
    let catalog = catalog();
    let want = reference(&catalog, &batch());
    let cfg = CseConfig {
        exec_limits: ExecLimits {
            max_rows: Some(16),
            max_bytes: None,
        },
        ..CseConfig::default()
    };
    let (_, out) = governed(&catalog, &batch(), &cfg);
    assert_matches_reference(&out.results, &want, "row-budget");
    assert!(
        codes(&out.events).contains(&"EXEC_ROW_BUDGET"),
        "events: {:?}",
        out.events
    );
}

/// Same for the memory budget.
#[test]
fn memory_budget_breach_recovers() {
    let catalog = catalog();
    let want = reference(&catalog, &batch());
    let cfg = CseConfig {
        exec_limits: ExecLimits {
            max_rows: None,
            max_bytes: Some(1024),
        },
        ..CseConfig::default()
    };
    let (_, out) = governed(&catalog, &batch(), &cfg);
    assert_matches_reference(&out.results, &want, "mem-budget");
    assert!(
        codes(&out.events).contains(&"EXEC_MEM_BUDGET"),
        "events: {:?}",
        out.events
    );
}

/// Probabilistic injection is deterministic per seed: two runs with the
/// same seed produce identical events and identical (correct) results.
#[test]
fn probabilistic_injection_is_deterministic_per_seed() {
    let catalog = catalog();
    let want = reference(&catalog, &batch());
    let run = || {
        let cfg = fail_config(sites::SCAN_TABLE, 0.5);
        governed(&catalog, &batch(), &cfg)
    };
    let (_, a) = run();
    let (_, b) = run();
    assert_eq!(
        codes(&a.events),
        codes(&b.events),
        "seed {} drifted",
        seed()
    );
    assert_eq!(
        a.events.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
        b.events.iter().map(|e| e.to_string()).collect::<Vec<_>>()
    );
    assert_matches_reference(&a.results, &want, "probabilistic");
    assert_matches_reference(&b.results, &want, "probabilistic-repeat");
}

// ---------------------------------------------------------------------------
// Final-attempt-only metrics
// ---------------------------------------------------------------------------

/// A certain spool fault forces every statement onto its baseline: the
/// final metrics must describe that final attempt only — no spool entries
/// from the abandoned CSE attempt, and the same memory high-water mark as
/// a run that never tried CSE at all.
#[test]
fn metrics_reflect_final_attempt_after_spool_fault() {
    let catalog = catalog();
    let cfg = fail_config(sites::SPOOL_MATERIALIZE, 1.0);
    let (opt, out) = governed(&catalog, &batch(), &cfg);
    assert!(!opt.plan.spools.is_empty(), "scenario needs a spool");
    let m = &out.metrics;
    assert!(
        m.spool_rows.is_empty() && m.spool_bytes.is_empty() && m.spool_reads.is_empty(),
        "rolled-back spool work must not leak into the final metrics: {m:?}"
    );
    // The baseline the engine retried on is the same baseline a forced
    // fallback plans, so the high-water mark must match it exactly.
    let forced = CseConfig {
        fallback_only: true,
        ..CseConfig::default()
    };
    let (_, base) = governed(&catalog, &batch(), &forced);
    assert!(m.peak_bytes > 0);
    assert_eq!(
        m.peak_bytes, base.metrics.peak_bytes,
        "peak_bytes must reflect the final (baseline) attempt only"
    );
}

/// Same contract when the retry is triggered by `ExecLimits` instead of a
/// fault: a tiny row budget trips the CSE attempt, the baseline retry
/// (limits suppressed) is what the metrics describe.
#[test]
fn metrics_reflect_final_attempt_after_row_budget_trip() {
    let catalog = catalog();
    let cfg = CseConfig {
        exec_limits: ExecLimits {
            max_rows: Some(16),
            max_bytes: None,
        },
        ..CseConfig::default()
    };
    let (_, out) = governed(&catalog, &batch(), &cfg);
    assert!(
        codes(&out.events).contains(&"EXEC_ROW_BUDGET"),
        "events: {:?}",
        out.events
    );
    let m = &out.metrics;
    assert!(
        m.spool_rows.is_empty() && m.spool_bytes.is_empty(),
        "spools of the tripped attempt must be rolled back: {m:?}"
    );
    let forced = CseConfig {
        fallback_only: true,
        ..CseConfig::default()
    };
    let (_, base) = governed(&catalog, &batch(), &forced);
    assert_eq!(m.peak_bytes, base.metrics.peak_bytes);
}

/// Seeded (probabilistic) faults: whatever mix of attempts a seed
/// produces, the metrics stay internally consistent — every spool with
/// reads or bytes also has rows, the high-water mark is set, and a rerun
/// with the same seed reproduces the numbers bit-for-bit. CI sweeps
/// `CSE_FAIL_SEED` over {1, 7, 42}.
#[test]
fn seeded_fault_metrics_are_consistent_and_deterministic() {
    let catalog = catalog();
    let want = reference(&catalog, &batch());
    let run = || {
        let cfg = fail_config(sites::SPOOL_MATERIALIZE, 0.5);
        governed(&catalog, &batch(), &cfg)
    };
    let (_, a) = run();
    let (_, b) = run();
    assert_matches_reference(&a.results, &want, "seeded-metrics");
    let m = &a.metrics;
    for id in m.spool_reads.keys() {
        assert!(
            m.spool_rows.contains_key(id),
            "spool {id:?} read but never materialized (seed {})",
            seed()
        );
    }
    assert_eq!(
        m.spool_rows
            .keys()
            .collect::<std::collections::BTreeSet<_>>(),
        m.spool_bytes
            .keys()
            .collect::<std::collections::BTreeSet<_>>(),
        "row and byte accounting must cover the same spools"
    );
    assert!(m.peak_bytes > 0, "high-water mark must be recorded");
    assert_eq!(
        m.spool_rows,
        b.metrics.spool_rows,
        "seed {} drifted",
        seed()
    );
    assert_eq!(m.spool_bytes, b.metrics.spool_bytes);
    assert_eq!(m.spool_reads, b.metrics.spool_reads);
    assert_eq!(m.peak_bytes, b.metrics.peak_bytes);
}

/// The `CSE_FAIL` environment grammar round-trips through `FailSpec`.
#[test]
fn fail_spec_grammar() {
    let s = FailSpec::parse("spool.materialize:1.0:7").unwrap();
    assert_eq!(s.site, "spool.materialize");
    assert_eq!(s.probability, 1.0);
    assert_eq!(s.seed, 7);
    let d = FailSpec::parse("scan.table:0.25").unwrap();
    assert_eq!(d.probability, 0.25);
    assert!(FailSpec::parse("scan.table").is_err());
    assert!(FailSpec::parse("scan.table:notanumber").is_err());
}

// ---------------------------------------------------------------------------
// approx_eq semantics (satellite c)
// ---------------------------------------------------------------------------

/// Near-zero aggregates compare under the absolute floor: a pure relative
/// tolerance would reject 0.0 vs 1e-12 (relative error = 1).
#[test]
fn approx_eq_has_an_absolute_floor_near_zero() {
    let a = ResultSet::new(vec!["x".to_string()], vec![row(vec![Value::Float(0.0)])]);
    let b = ResultSet::new(vec!["x".to_string()], vec![row(vec![Value::Float(1e-12)])]);
    // Even with a relative tolerance far too tight to absorb the residue,
    // the default absolute floor (1e-7) accepts it ...
    assert!(a.approx_eq(&b, 1e-13), "absolute floor must absorb 1e-12");
    // ... and removing the floor restores strict relative comparison.
    assert!(!a.approx_eq_with(&b, 1e-13, 0.0), "zero floor is strict");
    // The floor is a floor, not a blanket: clearly different values fail.
    let c = ResultSet::new(vec!["x".to_string()], vec![row(vec![Value::Float(1e-3)])]);
    assert!(!a.approx_eq(&c, 1e-9));
}
