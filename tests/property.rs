//! Property-based tests over the core invariants, driven by the in-repo
//! deterministic generator (`cse_storage::testkit::TestRng`):
//!
//! - scalar normalization preserves evaluation semantics and is idempotent;
//! - proven implications hold on every concrete row;
//! - covering predicates constructed from branch predicates are implied by
//!   every branch and hold on every row any branch accepts;
//! - `RelSet` behaves like a set of integers;
//! - three-valued logic laws.

use similar_subexpr::algebra::{column_ranges, implies, CmpOp, ColRef, RelId, RelSet, Scalar};
use similar_subexpr::core::simplify_covering;
use similar_subexpr::exec::{eval, Layout};
use similar_subexpr::storage::testkit::TestRng;
use similar_subexpr::storage::Value;

const NCOLS: u16 = 4;
const CASES: usize = 300;

fn layout() -> Layout {
    let cols: Vec<ColRef> = (0..NCOLS).map(|i| ColRef::new(RelId(0), i)).collect();
    Layout::new(&cols)
}

fn gen_value(rng: &mut TestRng) -> Value {
    match rng.range_usize(0, 6) {
        0 => Value::Null,
        1 | 2 => Value::Float(rng.range_i64(-40, 40) as f64 / 2.0),
        _ => Value::Int(rng.range_i64(-20, 20)),
    }
}

fn gen_row(rng: &mut TestRng) -> Vec<Value> {
    (0..NCOLS).map(|_| gen_value(rng)).collect()
}

fn gen_cmp_op(rng: &mut TestRng) -> CmpOp {
    *rng.pick(&[
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ])
}

/// Random predicates over columns of rel 0 and small integer literals.
fn gen_scalar(rng: &mut TestRng, depth: usize) -> Scalar {
    if depth == 0 || rng.chance(0.4) {
        // Leaf: column-vs-literal or column-vs-column comparison.
        if rng.chance(0.7) {
            let c = rng.range_i64(0, NCOLS as i64) as u16;
            Scalar::cmp(
                gen_cmp_op(rng),
                Scalar::col(RelId(0), c),
                Scalar::int(rng.range_i64(-10, 10)),
            )
        } else {
            let a = rng.range_i64(0, NCOLS as i64) as u16;
            let b = rng.range_i64(0, NCOLS as i64) as u16;
            Scalar::eq(Scalar::col(RelId(0), a), Scalar::col(RelId(0), b))
        }
    } else {
        match rng.range_usize(0, 3) {
            0 => {
                let n = rng.range_usize(1, 4);
                Scalar::and(
                    (0..n)
                        .map(|_| gen_scalar(rng, depth - 1))
                        .collect::<Vec<_>>(),
                )
            }
            1 => {
                let n = rng.range_usize(1, 4);
                Scalar::or(
                    (0..n)
                        .map(|_| gen_scalar(rng, depth - 1))
                        .collect::<Vec<_>>(),
                )
            }
            _ => Scalar::Not(Box::new(gen_scalar(rng, depth - 1))),
        }
    }
}

#[test]
fn normalize_preserves_evaluation() {
    let mut rng = TestRng::new(0xA11CE);
    let l = layout();
    for _ in 0..CASES {
        let p = gen_scalar(&mut rng, 3);
        let row = gen_row(&mut rng);
        let before = eval(&p, &l, &row);
        let after = eval(&p.normalize(), &l, &row);
        assert_eq!(before, after, "normalization changed semantics of {p}");
    }
}

#[test]
fn normalize_is_idempotent() {
    let mut rng = TestRng::new(0xB0B);
    for _ in 0..CASES {
        let p = gen_scalar(&mut rng, 3);
        let n1 = p.normalize();
        let n2 = n1.normalize();
        assert_eq!(n1, n2);
    }
}

#[test]
fn implication_is_sound() {
    // If the checker proves p ⇒ q, then every row accepting p accepts q.
    let mut rng = TestRng::new(0xC0FFEE);
    let l = layout();
    for _ in 0..CASES {
        let p = gen_scalar(&mut rng, 3);
        let q = gen_scalar(&mut rng, 3);
        let rows: Vec<Vec<Value>> = (0..24).map(|_| gen_row(&mut rng)).collect();
        if implies(&p, &q) {
            for row in &rows {
                if eval(&p, &l, row) == Value::Bool(true) {
                    assert_eq!(
                        eval(&q, &l, row),
                        Value::Bool(true),
                        "claimed {p} implies {q} but row {row:?} violates it"
                    );
                }
            }
        }
    }
}

#[test]
fn covering_accepts_every_branch_row() {
    // simplify_covering produces a weakening of the OR of the branches:
    // any row accepted by some branch must be accepted by the covering.
    let mut rng = TestRng::new(0xD00D);
    let l = layout();
    for _ in 0..CASES {
        let n = rng.range_usize(1, 4);
        let normalized: Vec<Scalar> = (0..n)
            .map(|_| gen_scalar(&mut rng, 3).normalize())
            .collect();
        let covering = simplify_covering(&normalized);
        let rows: Vec<Vec<Value>> = (0..24).map(|_| gen_row(&mut rng)).collect();
        for row in &rows {
            let any_branch = normalized
                .iter()
                .any(|b| eval(b, &l, row) == Value::Bool(true));
            if any_branch {
                assert_eq!(
                    eval(&covering, &l, row),
                    Value::Bool(true),
                    "covering {covering} rejects a row a branch accepts"
                );
            }
        }
    }
}

#[test]
fn column_ranges_are_sound() {
    // Any row satisfying p lies inside every extracted interval.
    let mut rng = TestRng::new(0xE66);
    let l = layout();
    for _ in 0..CASES * 4 {
        let p = gen_scalar(&mut rng, 3);
        let row = gen_row(&mut rng);
        if eval(&p, &l, &row) != Value::Bool(true) {
            continue;
        }
        for (col, iv) in column_ranges(&p) {
            let v = &row[col.col as usize];
            if v.is_null() {
                continue;
            }
            if let Some((lo, inc)) = &iv.lo {
                let ord = v.total_cmp(lo);
                assert!(
                    if *inc { ord.is_ge() } else { ord.is_gt() },
                    "range lo violated for {p} by {row:?}"
                );
            }
            if let Some((hi, inc)) = &iv.hi {
                let ord = v.total_cmp(hi);
                assert!(
                    if *inc { ord.is_le() } else { ord.is_lt() },
                    "range hi violated for {p} by {row:?}"
                );
            }
        }
    }
}

#[test]
fn relset_models_integer_set() {
    let mut rng = TestRng::new(0xF00);
    for _ in 0..CASES {
        let mut ids: std::collections::BTreeSet<u32> = Default::default();
        let mut other: std::collections::BTreeSet<u32> = Default::default();
        for _ in 0..rng.range_usize(0, 20) {
            ids.insert(rng.range_i64(0, 256) as u32);
        }
        for _ in 0..rng.range_usize(0, 20) {
            other.insert(rng.range_i64(0, 256) as u32);
        }
        let a = RelSet::from_iter(ids.iter().map(|&i| RelId(i)));
        let b = RelSet::from_iter(other.iter().map(|&i| RelId(i)));
        assert_eq!(a.len(), ids.len());
        let union: std::collections::BTreeSet<u32> = ids.union(&other).copied().collect();
        let inter: std::collections::BTreeSet<u32> = ids.intersection(&other).copied().collect();
        let diff: std::collections::BTreeSet<u32> = ids.difference(&other).copied().collect();
        assert_eq!(
            a.union(b).iter().map(|r| r.0).collect::<Vec<_>>(),
            union.into_iter().collect::<Vec<_>>()
        );
        assert_eq!(
            a.intersect(b).iter().map(|r| r.0).collect::<Vec<_>>(),
            inter.into_iter().collect::<Vec<_>>()
        );
        assert_eq!(
            a.difference(b).iter().map(|r| r.0).collect::<Vec<_>>(),
            diff.into_iter().collect::<Vec<_>>()
        );
        assert_eq!(a.is_subset(b), ids.is_subset(&other));
    }
}

#[test]
fn three_valued_de_morgan() {
    // NOT (p AND q) ≡ (NOT p) OR (NOT q) under 3VL.
    let mut rng = TestRng::new(0x3A1);
    let l = layout();
    for _ in 0..CASES {
        let p = gen_scalar(&mut rng, 3);
        let q = gen_scalar(&mut rng, 3);
        let row = gen_row(&mut rng);
        let lhs = eval(
            &Scalar::Not(Box::new(Scalar::and([p.clone(), q.clone()]))),
            &l,
            &row,
        );
        let rhs = eval(
            &Scalar::or([Scalar::Not(Box::new(p)), Scalar::Not(Box::new(q))]),
            &l,
            &row,
        );
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn date_roundtrip() {
    let mut rng = TestRng::new(0xDA7E);
    for _ in 0..2000 {
        let days = rng.range_i64(-200_000, 200_000) as i32;
        let (y, m, d) = similar_subexpr::storage::dates::from_days(days);
        assert_eq!(
            similar_subexpr::storage::dates::to_days(y, m, d),
            Some(days)
        );
    }
}

/// Reference implementation of grouped aggregation used to cross-check the
/// engine's HashAggregate.
mod agg_reference {
    use similar_subexpr::algebra::{AggExpr, ColRef, PlanContext, Scalar};
    use similar_subexpr::exec::Engine;
    use similar_subexpr::optimizer::{FullPlan, PhysicalPlan};
    use similar_subexpr::storage::testkit::TestRng;
    use similar_subexpr::storage::{row, Catalog, DataType, Schema, Table, Value};
    use std::collections::BTreeMap;

    fn run_engine(data: &[(i64, i64)]) -> Vec<(i64, i64, i64)> {
        let mut t = Table::new(
            "t",
            Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
        );
        for (k, v) in data {
            t.push(row(vec![Value::Int(*k), Value::Int(*v)])).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register_table(t).unwrap();
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let rel = ctx.add_base_rel("t", "t", cat.table("t").unwrap().schema().clone(), b);
        let out = ctx.add_agg_output(&[DataType::Int, DataType::Int], b);
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::TableScan {
                rel,
                filter: None,
                layout: vec![ColRef::new(rel, 0), ColRef::new(rel, 1)],
            }),
            keys: vec![ColRef::new(rel, 0)],
            aggs: vec![AggExpr::sum(Scalar::col(rel, 1)), AggExpr::count_star()],
            out,
            layout: vec![
                ColRef::new(rel, 0),
                ColRef::new(out, 0),
                ColRef::new(out, 1),
            ],
        };
        let engine = Engine::new(&cat, &ctx);
        let full = FullPlan {
            root: plan,
            spools: BTreeMap::new(),
            cost: 0.0,
            baseline: None,
        };
        let mut rows: Vec<(i64, i64, i64)> = engine
            .execute(&full)
            .unwrap()
            .results
            .remove(0)
            .rows
            .iter()
            .map(|r| {
                (
                    r[0].as_i64().unwrap(),
                    r[1].as_i64().unwrap(),
                    r[2].as_i64().unwrap(),
                )
            })
            .collect();
        rows.sort();
        rows
    }

    fn reference(data: &[(i64, i64)]) -> Vec<(i64, i64, i64)> {
        let mut groups: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
        for (k, v) in data {
            let e = groups.entry(*k).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        groups.into_iter().map(|(k, (s, n))| (k, s, n)).collect()
    }

    #[test]
    fn hash_aggregate_matches_reference() {
        let mut rng = TestRng::new(0xA66);
        for _ in 0..40 {
            let n = rng.range_usize(0, 200);
            let data: Vec<(i64, i64)> = (0..n)
                .map(|_| (rng.range_i64(-5, 5), rng.range_i64(-100, 100)))
                .collect();
            assert_eq!(run_engine(&data), reference(&data));
        }
    }
}
