//! Property-based tests over the core invariants:
//!
//! - scalar normalization preserves evaluation semantics and is idempotent;
//! - proven implications hold on every concrete row;
//! - covering predicates constructed from branch predicates are implied by
//!   every branch and hold on every row any branch accepts;
//! - `RelSet` behaves like a set of integers;
//! - three-valued logic laws.

use proptest::prelude::*;
use similar_subexpr::algebra::{
    column_ranges, implies, CmpOp, ColRef, RelId, RelSet, Scalar,
};
use similar_subexpr::core::simplify_covering;
use similar_subexpr::exec::{eval, Layout};
use similar_subexpr::storage::Value;

const NCOLS: u16 = 4;

fn layout() -> Layout {
    let cols: Vec<ColRef> = (0..NCOLS).map(|i| ColRef::new(RelId(0), i)).collect();
    Layout::new(&cols)
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (-20i64..20).prop_map(Value::Int),
        1 => Just(Value::Null),
        2 => (-20i64..20).prop_map(|i| Value::Float(i as f64 / 2.0)),
    ]
}

fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(arb_value(), NCOLS as usize)
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Random predicates over columns of rel 0 and small integer literals.
fn arb_scalar() -> impl Strategy<Value = Scalar> {
    let leaf = prop_oneof![
        ((0..NCOLS), arb_cmp_op(), -10i64..10).prop_map(|(c, op, v)| Scalar::cmp(
            op,
            Scalar::col(RelId(0), c),
            Scalar::int(v)
        )),
        ((0..NCOLS), (0..NCOLS)).prop_map(|(a, b)| Scalar::eq(
            Scalar::col(RelId(0), a),
            Scalar::col(RelId(0), b)
        )),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Scalar::and),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Scalar::or),
            inner.prop_map(|p| Scalar::Not(Box::new(p))),
        ]
    })
}

proptest! {
    #[test]
    fn normalize_preserves_evaluation(p in arb_scalar(), row in arb_row()) {
        let l = layout();
        let before = eval(&p, &l, &row);
        let after = eval(&p.normalize(), &l, &row);
        prop_assert_eq!(before, after, "normalization changed semantics of {}", p);
    }

    #[test]
    fn normalize_is_idempotent(p in arb_scalar()) {
        let n1 = p.normalize();
        let n2 = n1.normalize();
        prop_assert_eq!(n1, n2);
    }

    #[test]
    fn implication_is_sound(p in arb_scalar(), q in arb_scalar(), rows in proptest::collection::vec(arb_row(), 1..24)) {
        // If the checker proves p ⇒ q, then every row accepting p accepts q.
        if implies(&p, &q) {
            let l = layout();
            for row in &rows {
                if eval(&p, &l, row) == Value::Bool(true) {
                    prop_assert_eq!(
                        eval(&q, &l, row), Value::Bool(true),
                        "claimed {} implies {} but row {:?} violates it", p, q, row
                    );
                }
            }
        }
    }

    #[test]
    fn covering_accepts_every_branch_row(
        branches in proptest::collection::vec(arb_scalar(), 1..4),
        rows in proptest::collection::vec(arb_row(), 1..24),
    ) {
        // simplify_covering produces a weakening of the OR of the branches:
        // any row accepted by some branch must be accepted by the covering.
        let normalized: Vec<Scalar> = branches.iter().map(Scalar::normalize).collect();
        let covering = simplify_covering(&normalized);
        let l = layout();
        for row in &rows {
            let any_branch = normalized
                .iter()
                .any(|b| eval(b, &l, row) == Value::Bool(true));
            if any_branch {
                prop_assert_eq!(
                    eval(&covering, &l, row), Value::Bool(true),
                    "covering {} rejects a row a branch accepts", covering
                );
            }
        }
    }

    #[test]
    fn column_ranges_are_sound(p in arb_scalar(), row in arb_row()) {
        // Any row satisfying p lies inside every extracted interval.
        let l = layout();
        if eval(&p, &l, &row) != Value::Bool(true) {
            return Ok(());
        }
        for (col, iv) in column_ranges(&p) {
            let v = &row[col.col as usize];
            if v.is_null() {
                continue;
            }
            if let Some((lo, inc)) = &iv.lo {
                let ord = v.total_cmp(lo);
                prop_assert!(if *inc { ord.is_ge() } else { ord.is_gt() },
                    "range lo violated for {} by {:?}", p, row);
            }
            if let Some((hi, inc)) = &iv.hi {
                let ord = v.total_cmp(hi);
                prop_assert!(if *inc { ord.is_le() } else { ord.is_lt() },
                    "range hi violated for {} by {:?}", p, row);
            }
        }
    }

    #[test]
    fn relset_models_integer_set(ids in proptest::collection::btree_set(0u32..256, 0..20),
                                 other in proptest::collection::btree_set(0u32..256, 0..20)) {
        let a = RelSet::from_iter(ids.iter().map(|&i| RelId(i)));
        let b = RelSet::from_iter(other.iter().map(|&i| RelId(i)));
        prop_assert_eq!(a.len(), ids.len());
        let union: std::collections::BTreeSet<u32> = ids.union(&other).copied().collect();
        let inter: std::collections::BTreeSet<u32> = ids.intersection(&other).copied().collect();
        let diff: std::collections::BTreeSet<u32> = ids.difference(&other).copied().collect();
        prop_assert_eq!(a.union(b).iter().map(|r| r.0).collect::<Vec<_>>(),
                        union.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(a.intersect(b).iter().map(|r| r.0).collect::<Vec<_>>(),
                        inter.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(a.difference(b).iter().map(|r| r.0).collect::<Vec<_>>(),
                        diff.into_iter().collect::<Vec<_>>());
        prop_assert_eq!(a.is_subset(b), ids.is_subset(&other));
    }

    #[test]
    fn three_valued_de_morgan(p in arb_scalar(), q in arb_scalar(), row in arb_row()) {
        // NOT (p AND q) ≡ (NOT p) OR (NOT q) under 3VL.
        let l = layout();
        let lhs = eval(&Scalar::Not(Box::new(Scalar::and([p.clone(), q.clone()]))), &l, &row);
        let rhs = eval(
            &Scalar::or([Scalar::Not(Box::new(p)), Scalar::Not(Box::new(q))]),
            &l,
            &row,
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn date_roundtrip(days in -200_000i32..200_000) {
        let (y, m, d) = similar_subexpr::storage::dates::from_days(days);
        prop_assert_eq!(similar_subexpr::storage::dates::to_days(y, m, d), Some(days));
    }
}

/// Reference implementation of grouped aggregation used to cross-check the
/// engine's HashAggregate.
mod agg_reference {
    use proptest::prelude::*;
    use similar_subexpr::algebra::{AggExpr, ColRef, LogicalPlan, PlanContext, Scalar};
    use similar_subexpr::exec::Engine;
    use similar_subexpr::optimizer::{FullPlan, PhysicalPlan};
    use similar_subexpr::storage::{row, Catalog, DataType, Schema, Table, Value};
    use std::collections::BTreeMap;

    fn run_engine(data: &[(i64, i64)]) -> Vec<(i64, i64, i64)> {
        let mut t = Table::new(
            "t",
            Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
        );
        for (k, v) in data {
            t.push(row(vec![Value::Int(*k), Value::Int(*v)])).unwrap();
        }
        let mut cat = Catalog::new();
        cat.register_table(t).unwrap();
        let mut ctx = PlanContext::new();
        let b = ctx.new_block();
        let rel = ctx.add_base_rel("t", "t", cat.table("t").unwrap().schema().clone(), b);
        let out = ctx.add_agg_output(&[DataType::Int, DataType::Int], b);
        let _ = LogicalPlan::get(rel); // silence unused-import style concerns
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::TableScan {
                rel,
                filter: None,
                layout: vec![ColRef::new(rel, 0), ColRef::new(rel, 1)],
            }),
            keys: vec![ColRef::new(rel, 0)],
            aggs: vec![
                AggExpr::sum(Scalar::col(rel, 1)),
                AggExpr::count_star(),
            ],
            out,
            layout: vec![
                ColRef::new(rel, 0),
                ColRef::new(out, 0),
                ColRef::new(out, 1),
            ],
        };
        let engine = Engine::new(&cat, &ctx);
        let full = FullPlan {
            root: plan,
            spools: BTreeMap::new(),
            cost: 0.0,
        };
        let mut rows: Vec<(i64, i64, i64)> = engine
            .execute(&full)
            .unwrap()
            .results
            .remove(0)
            .rows
            .iter()
            .map(|r| {
                (
                    r[0].as_i64().unwrap(),
                    r[1].as_i64().unwrap(),
                    r[2].as_i64().unwrap(),
                )
            })
            .collect();
        rows.sort();
        rows
    }

    fn reference(data: &[(i64, i64)]) -> Vec<(i64, i64, i64)> {
        let mut groups: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
        for (k, v) in data {
            let e = groups.entry(*k).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        groups.into_iter().map(|(k, (s, n))| (k, s, n)).collect()
    }

    proptest! {
        #[test]
        fn hash_aggregate_matches_reference(
            data in proptest::collection::vec((-5i64..5, -100i64..100), 0..200)
        ) {
            prop_assert_eq!(run_engine(&data), reference(&data));
        }
    }
}
