//! End-to-end reproduction of the paper's Example 1 / §6.1: the three-query
//! batch over customer ⋈ orders ⋈ lineitem. Verifies plan correctness (CSE
//! and no-CSE plans must produce identical results), CSE detection, and
//! that the chosen CSE actually wins on estimated cost.

use similar_subexpr::prelude::*;

/// The paper's Example 1 queries (c_nationkey plays the paper's
/// n_regionkey role in Q1/Q2, as in the paper's own E5/rewrites).
pub const Q1: &str =
    "select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, sum(l_quantity) as lq \
     from customer, orders, lineitem \
     where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and o_orderdate < '1996-07-01' \
       and c_nationkey > 0 and c_nationkey < 20 \
     group by c_nationkey, c_mktsegment";
pub const Q2: &str = "select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq \
     from customer, orders, lineitem \
     where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and o_orderdate < '1996-07-01' \
       and c_nationkey > 5 and c_nationkey < 25 \
     group by c_nationkey";
pub const Q3: &str = "select n_regionkey, sum(l_extendedprice) as le, sum(l_quantity) as lq \
     from customer, orders, lineitem, nation \
     where c_custkey = o_custkey and o_orderkey = l_orderkey \
       and c_nationkey = n_nationkey \
       and o_orderdate < '1996-07-01' \
       and c_nationkey > 2 and c_nationkey < 24 \
     group by n_regionkey";

fn batch() -> String {
    format!("{Q1};\n{Q2};\n{Q3};")
}

fn catalog() -> Catalog {
    generate_catalog(&TpchConfig::new(0.002))
}

fn run(catalog: &Catalog, cfg: &CseConfig) -> (Optimized, ExecOutput) {
    let optimized = optimize_sql(catalog, &batch(), cfg).expect("optimize");
    let engine = Engine::new(catalog, &optimized.ctx);
    let out = engine.execute(&optimized.plan).expect("execute");
    (optimized, out)
}

#[test]
fn cse_plan_matches_no_cse_results() {
    let catalog = catalog();
    let (_, base) = run(&catalog, &CseConfig::no_cse());
    let (opt, shared) = run(&catalog, &CseConfig::default());
    assert_eq!(base.results.len(), 3);
    assert_eq!(shared.results.len(), 3);
    for (b, s) in base.results.iter().zip(shared.results.iter()) {
        assert_eq!(b.rows.len(), s.rows.len(), "row counts differ");
        assert!(
            b.approx_eq(s, 1e-9),
            "rows differ between CSE and no-CSE plans"
        );
    }
    // The batch must actually share: at least one spool with >= 2 reads.
    assert!(
        !opt.plan.spools.is_empty(),
        "expected a covering subexpression in the final plan: report {:?}",
        opt.report
    );
    assert!(
        shared.metrics.spool_reads.values().any(|&n| n >= 2),
        "spool must be read by multiple consumers: {:?}",
        shared.metrics
    );
}

#[test]
fn cse_reduces_estimated_cost() {
    let catalog = catalog();
    let (no, _) = run(&catalog, &CseConfig::no_cse());
    let (yes, _) = run(&catalog, &CseConfig::default());
    assert!(
        yes.plan.cost < no.plan.cost,
        "CSE plan must be cheaper: {} vs {}",
        yes.plan.cost,
        no.plan.cost
    );
    // The paper reports roughly 2.6x cost reduction for this batch; accept
    // any clear win.
    assert!(yes.plan.cost < 0.8 * no.plan.cost);
}

#[test]
fn heuristics_prune_candidates_without_losing_the_plan() {
    let catalog = catalog();
    let (with_h, _) = run(&catalog, &CseConfig::default());
    let (no_h, out_no_h) = run(&catalog, &CseConfig::no_heuristics());
    // Without pruning there must be strictly more candidates (paper: 5 vs 1).
    assert!(
        no_h.report.candidates.len() > with_h.report.candidates.len(),
        "no-heuristics candidates {} vs heuristics {}",
        no_h.report.candidates.len(),
        with_h.report.candidates.len()
    );
    // Both configurations end with comparable final cost (same chosen CSE
    // family); allow slack for tie-breaking.
    let ratio = with_h.plan.cost / no_h.plan.cost;
    assert!(
        (0.7..=1.3).contains(&ratio),
        "final costs diverged: {} vs {}",
        with_h.plan.cost,
        no_h.plan.cost
    );
    assert_eq!(out_no_h.results.len(), 3);
}

#[test]
fn no_cse_configuration_reports_baseline() {
    let catalog = catalog();
    let (opt, _) = run(&catalog, &CseConfig::no_cse());
    assert!(opt.plan.spools.is_empty());
    assert_eq!(opt.report.final_cost, opt.report.baseline_cost);
}
