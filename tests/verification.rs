//! End-to-end checks of the `cse-verify` wiring in the pipeline: the
//! invariant passes run behind `CseConfig::verify`, attach a clean report
//! to `CseReport`, and cover both the CSE and the no-CSE paths on real
//! TPC-H workloads. (The adversarial corruption tests that make each rule
//! fire live in `crates/verify/tests/corruption.rs`.)

use similar_subexpr::prelude::*;

const SHARING_BATCH: &str = "\
  select c_nationkey, sum(l_extendedprice) as le \
  from customer, orders, lineitem \
  where c_custkey = o_custkey and o_orderkey = l_orderkey \
    and c_nationkey > 0 and c_nationkey < 20 \
  group by c_nationkey;\
  select c_nationkey, sum(l_quantity) as lq \
  from customer, orders, lineitem \
  where c_custkey = o_custkey and o_orderkey = l_orderkey \
    and c_nationkey > 5 and c_nationkey < 25 \
  group by c_nationkey;";

fn catalog() -> Catalog {
    generate_catalog(&TpchConfig::new(0.002))
}

fn verified_config(base: CseConfig) -> CseConfig {
    CseConfig {
        verify: true,
        ..base
    }
}

#[test]
fn sharing_batch_verifies_clean() {
    let cfg = verified_config(CseConfig::default());
    let optimized = optimize_sql(&catalog(), SHARING_BATCH, &cfg).expect("optimize");
    let report = optimized
        .report
        .verification
        .as_ref()
        .expect("verification report attached when cfg.verify is set");
    assert!(report.is_clean(), "{}", report.render());
    assert!(
        !optimized.report.candidates.is_empty(),
        "the batch shares a subexpression, so verification covered passes 3-5 too"
    );
}

#[test]
fn no_heuristics_verifies_clean() {
    let cfg = verified_config(CseConfig::no_heuristics());
    let optimized = optimize_sql(&catalog(), SHARING_BATCH, &cfg).expect("optimize");
    let report = optimized.report.verification.as_ref().expect("report");
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn no_cse_path_verifies_clean() {
    let cfg = verified_config(CseConfig::no_cse());
    let optimized = optimize_sql(&catalog(), SHARING_BATCH, &cfg).expect("optimize");
    let report = optimized.report.verification.as_ref().expect("report");
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn verification_off_attaches_no_report() {
    let cfg = CseConfig {
        verify: false,
        ..CseConfig::default()
    };
    let optimized = optimize_sql(&catalog(), SHARING_BATCH, &cfg).expect("optimize");
    assert!(optimized.report.verification.is_none());
}
